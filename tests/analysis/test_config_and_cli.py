"""Config loading (pyproject + fallback parser), rule selection, and
the ``python -m repro lint`` command."""

import json
import os

import pytest

from repro.analysis import (DEFAULT_CONFIG, LintConfig, lint_paths,
                            load_config)
from repro.analysis.config import config_from_table, parse_simlint_table
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


# ----------------------------------------------------------- selection
def test_select_restricts_to_family():
    config = LintConfig(select=("DET",))
    assert config.rule_enabled("DET001")
    assert not config.rule_enabled("SQL001")


def test_ignore_drops_specific_rule():
    config = LintConfig(ignore=("SIM003",))
    assert config.rule_enabled("SIM001")
    assert not config.rule_enabled("SIM003")


def test_narrowed_applies_cli_overrides():
    config = DEFAULT_CONFIG.narrowed(select=["SQL"], ignore=["SQL003"])
    assert config.rule_enabled("SQL001")
    assert not config.rule_enabled("SQL003")
    assert not config.rule_enabled("DET001")


# ------------------------------------------------------------- loading
def test_load_config_reads_repo_pyproject():
    config = load_config(REPO_ROOT)
    assert config.paths == ("src/repro", "tests", "benchmarks")
    assert "src/repro/sql" in config.sql_exclude
    assert ("tests/sim", "FLW002") in config.per_path_ignore


def test_load_config_defaults_without_pyproject(tmp_path):
    assert load_config(str(tmp_path)) == DEFAULT_CONFIG


def test_load_config_from_custom_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.simlint]\n"
        'paths = ["lib"]\n'
        'select = ["DET", "SIM"]\n'
        'ignore = ["DET005"]\n')
    config = load_config(str(tmp_path))
    assert config.paths == ("lib",)
    assert config.rule_enabled("SIM001")
    assert not config.rule_enabled("DET005")
    assert not config.rule_enabled("SQL001")


def test_fallback_parser_matches_tomllib_for_our_table():
    text = (
        "[tool.other]\n"
        'noise = "yes"\n'
        "[tool.simlint]\n"
        'paths = ["src/repro", "tools"]\n'
        "select = []\n"
        'ignore = ["SQL003"]\n'
        "[tool.after]\n"
        'more = "noise"\n')
    table = parse_simlint_table(text)
    assert table == {"paths": ["src/repro", "tools"], "select": [],
                     "ignore": ["SQL003"]}
    config = config_from_table(table)
    assert config.paths == ("src/repro", "tools")
    assert config.ignore == ("SQL003",)


def test_config_rejects_non_string_lists():
    with pytest.raises(ValueError):
        config_from_table({"paths": [1, 2]})


# ----------------------------------------------------- per-path ignore
def test_per_path_ignore_drops_rule_under_prefix():
    config = LintConfig(per_path_ignore=(("tests/sim", "FLW002"),))
    assert not config.rule_enabled_at("FLW002", "tests/sim/test_x.py")
    assert not config.rule_enabled_at("FLW002", "./tests/sim/deep/y.py")
    # Other rules and other paths are unaffected.
    assert config.rule_enabled_at("FLW001", "tests/sim/test_x.py")
    assert config.rule_enabled_at("FLW002", "tests/simx/test_x.py")
    assert config.rule_enabled_at("FLW002", "src/repro/pool.py")


def test_per_path_ignore_accepts_family_prefix():
    config = LintConfig(per_path_ignore=(("tests/sql", "SQL"),))
    assert not config.rule_enabled_at("SQL001", "tests/sql/t.py")
    assert not config.rule_enabled_at("SQL003", "tests/sql/t.py")
    assert config.rule_enabled_at("DET001", "tests/sql/t.py")


def test_per_path_ignore_parses_from_table():
    config = config_from_table(
        {"per-path-ignore": ["tests/sim:FLW002,FLW001",
                             "benchmarks:DET"]})
    assert ("tests/sim", "FLW002") in config.per_path_ignore
    assert ("tests/sim", "FLW001") in config.per_path_ignore
    assert ("benchmarks", "DET") in config.per_path_ignore


def test_per_path_ignore_rejects_malformed_entry():
    with pytest.raises(ValueError):
        config_from_table({"per-path-ignore": ["no-colon-here"]})


def test_per_path_ignore_survives_narrowed():
    config = LintConfig(per_path_ignore=(("tests", "SQL"),))
    narrowed = config.narrowed(ignore=["DET005"])
    assert not narrowed.rule_enabled_at("SQL001", "tests/t.py")


def test_per_path_ignore_applies_through_lint_paths(tmp_path):
    leaky = ("def worker(sim, res):\n"
             "    req = res.request()\n"
             "    yield req\n")
    exempt = tmp_path / "exempt"
    exempt.mkdir()
    (exempt / "t.py").write_text(leaky)
    checked = tmp_path / "checked"
    checked.mkdir()
    (checked / "t.py").write_text(leaky)
    prefix = str(exempt).replace(os.sep, "/")
    config = LintConfig(sql_exclude=(),
                        per_path_ignore=((prefix, "FLW002"),))
    findings = lint_paths([str(tmp_path)], config=config)
    assert [finding.rule_id for finding in findings] == ["FLW002"]
    assert findings[0].path.startswith(str(checked))


# ----------------------------------------------------------------- CLI
def bad_module(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(
        "import time\n"
        "def probe(sim):\n"
        "    yield sim.timeout(1.0)\n"
        "    time.sleep(0.5)\n")
    return str(path)


def test_cli_lint_clean_path_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    assert main(["lint", str(clean)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_violation_exits_nonzero(tmp_path, capsys):
    assert main(["lint", bad_module(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out
    assert "bad.py:4:" in out


def test_cli_lint_json_format(tmp_path, capsys):
    assert main(["lint", "--format", "json", bad_module(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule_id"] == "SIM001"
    assert payload["findings"][0]["line"] == 4


def test_cli_lint_select_and_ignore(tmp_path, capsys):
    path = bad_module(tmp_path)
    assert main(["lint", "--select", "DET", path]) == 0
    capsys.readouterr()
    assert main(["lint", "--ignore", "SIM001", path]) == 0


def test_lint_paths_accepts_single_file(tmp_path):
    findings = lint_paths([bad_module(tmp_path)],
                          config=LintConfig(sql_exclude=()))
    assert [finding.rule_id for finding in findings] == ["SIM001"]


def test_cli_lint_unknown_rule_is_a_usage_error(tmp_path, capsys):
    # A typo'd --select must not silently disable every rule.
    assert main(["lint", "--select", "BOGUS", bad_module(tmp_path)]) == 2
    out = capsys.readouterr().out
    assert "unknown rule or family: BOGUS" in out
    capsys.readouterr()
    assert main(["lint", "--ignore", "SIM01", bad_module(tmp_path)]) == 2


def test_cli_lint_missing_path_is_an_error(tmp_path, capsys):
    missing = str(tmp_path / "no_such_dir")
    assert main(["lint", missing]) == 2
    assert "does not exist" in capsys.readouterr().out


def test_cli_lint_sarif_format(tmp_path, capsys):
    assert main(["lint", "--format", "sarif",
                 bad_module(tmp_path)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    results = document["runs"][0]["results"]
    assert [result["ruleId"] for result in results] == ["SIM001"]


def test_cli_lint_stats_appends_to_text(tmp_path, capsys):
    assert main(["lint", "--stats", bad_module(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "simlint stats: 1 file" in out
    assert "SIM001: 1 finding" in out


def test_cli_lint_stats_goes_to_stderr_for_machine_formats(tmp_path,
                                                           capsys):
    assert main(["lint", "--format", "json", "--stats",
                 bad_module(tmp_path)]) == 1
    captured = capsys.readouterr()
    json.loads(captured.out)  # stdout stays a valid document
    assert "simlint stats" in captured.err


# ----------------------------------------------------------- racecheck
RACED = """\
class Pool:
    def __init__(self, sim):
        self.sim = sim
        self.free = 5

    def worker(self):
        count = self.free
        yield self.sim.timeout(1)
        self.free = count - 1


def main(sim, pool):
    for _ in range(2):
        sim.process(pool.worker())
"""


def raced_module(tmp_path):
    path = tmp_path / "raced.py"
    path.write_text(RACED)
    return str(path)


def test_cli_racecheck_clean_path_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    assert main(["racecheck", str(clean)]) == 0
    assert "simrace: no findings" in capsys.readouterr().out


def test_cli_racecheck_finding_exits_one(tmp_path, capsys):
    assert main(["racecheck", raced_module(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RACE001" in out
    assert "read here" in out          # related location rendered
    assert "yield point crossed" in out


def test_cli_racecheck_json_format(tmp_path, capsys):
    assert main(["racecheck", "--format", "json",
                 raced_module(tmp_path)]) == 1
    document = json.loads(capsys.readouterr().out)
    (finding,) = document["findings"]
    assert finding["rule_id"] == "RACE001"
    assert len(finding["related"]) == 2


def test_cli_racecheck_sarif_format(tmp_path, capsys):
    assert main(["racecheck", "--format", "sarif",
                 raced_module(tmp_path)]) == 1
    document = json.loads(capsys.readouterr().out)
    run = document["runs"][0]
    listed = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert listed == {"RACE001", "RACE002", "RACE003", "RACE004",
                      "RACE005"}
    (result,) = run["results"]
    assert result["ruleId"] == "RACE001"
    assert len(result["relatedLocations"]) == 2


def test_cli_racecheck_stats_line(tmp_path, capsys):
    assert main(["racecheck", "--stats", raced_module(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "parse cache:" in out


def test_cli_racecheck_missing_path_is_an_error(tmp_path, capsys):
    missing = str(tmp_path / "nope.py")
    assert main(["racecheck", missing]) == 2

"""Unit tests for the forward may-dataflow solver."""

import ast
import textwrap

import pytest

from repro.analysis.flow.cfg import build_cfg, node_expressions
from repro.analysis.flow.dataflow import DataflowProblem, solve_forward


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


class AcquireRelease(DataflowProblem):
    """Toy pairing: ``x = acquire()`` gens ``x``, ``release(x)`` kills."""

    def gen(self, node):
        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and \
                isinstance(stmt.value, ast.Call) and \
                isinstance(stmt.value.func, ast.Name) and \
                stmt.value.func.id == "acquire" and \
                isinstance(stmt.targets[0], ast.Name):
            return frozenset({stmt.targets[0].id})
        return frozenset()

    def kill(self, node, facts):
        killed = set()
        for fragment in node_expressions(node):
            for sub in ast.walk(fragment):
                if isinstance(sub, ast.Call) and \
                        isinstance(sub.func, ast.Name) and \
                        sub.func.id == "release":
                    for arg in sub.args:
                        if isinstance(arg, ast.Name) and \
                                arg.id in facts:
                            killed.add(arg.id)
        return frozenset(killed)


def exit_facts(source):
    cfg = cfg_of(source)
    return solve_forward(cfg, AcquireRelease()).at_exit


def test_straight_line_pairing_is_clean():
    assert exit_facts('''
    def f():
        x = acquire()
        release(x)
    ''') == frozenset()


def test_missing_release_reaches_exit():
    assert exit_facts('''
    def f():
        x = acquire()
        work(x)
    ''') == {"x"}


def test_release_on_one_branch_only_leaks():
    assert exit_facts('''
    def f(flag):
        x = acquire()
        if flag:
            release(x)
    ''') == {"x"}


def test_release_on_both_branches_is_clean():
    assert exit_facts('''
    def f(flag):
        x = acquire()
        if flag:
            release(x)
        else:
            release(x)
    ''') == frozenset()


def test_exception_edge_leaks_past_late_release():
    # work(x) may raise before release(x) runs: the fact escapes along
    # the exception edge to <exit>.
    assert exit_facts('''
    def f():
        x = acquire()
        work(x)
        release(x)
    ''') == {"x"}


def test_finally_release_covers_exception_edge():
    assert exit_facts('''
    def f():
        x = acquire()
        try:
            work(x)
        finally:
            release(x)
    ''') == frozenset()


def test_gen_does_not_flow_on_own_exception_edge():
    # If acquire() itself raises, the assignment never happened: the
    # fact must not reach <exit> from the gen node's exception edge.
    assert exit_facts('''
    def f():
        x = acquire()
        release(x)
    ''') == frozenset()


def test_loop_reacquire_converges():
    assert exit_facts('''
    def f(items):
        for item in items:
            x = acquire()
            release(x)
    ''') == frozenset()


def test_leaving_is_edge_sensitive():
    cfg = cfg_of('''
    def f():
        x = acquire()
        release(x)
    ''')
    result = solve_forward(cfg, AcquireRelease())
    gen_node = next(node for node in cfg.nodes
                    if node.label == "Assign@3")
    assert result.leaving(gen_node, "normal") == {"x"}
    assert result.leaving(gen_node, "exception") == frozenset()


def test_initial_facts_flow_from_entry():
    class Seeded(AcquireRelease):
        def initial(self):
            return frozenset({"seed"})

    cfg = cfg_of('''
    def f():
        pass
    ''')
    assert solve_forward(cfg, Seeded()).at_exit == {"seed"}


def test_budget_guard_raises_on_nonmonotone_problem():
    class Flapping(DataflowProblem):
        """Alternates facts so IN sets never stabilize via the
        max_iterations override (gen depends on mutable state)."""

        def __init__(self):
            self.tick = 0

        def gen(self, node):
            self.tick += 1
            return frozenset({f"f{self.tick}"})

    cfg = cfg_of('''
    def f(items):
        for item in items:
            work(item)
    ''')
    with pytest.raises(RuntimeError, match="did not converge"):
        solve_forward(cfg, Flapping(), max_iterations=10)


class Flagging(AcquireRelease):
    """Transform demo: crossing a ``yield`` marks every live fact —
    the exact shape the RACE rules build on."""

    def transform(self, node, facts):
        if isinstance(node.stmt, ast.Expr) and \
                isinstance(node.stmt.value, ast.Yield):
            return frozenset(
                fact if fact.endswith("*") else fact + "*"
                for fact in facts)
        return facts


def test_transform_marks_facts_crossing_a_node():
    cfg = cfg_of('''
    def f():
        x = acquire()
        yield
        use(x)
    ''')
    result = solve_forward(cfg, Flagging())
    assert result.at_exit == {"x*"}


def test_transform_runs_after_kill_and_before_gen():
    # release(x) at the yield-free path kills before the transform
    # could mark; a fact genned AT the transforming node stays
    # unmarked (gen applies after transform on the normal edge).
    cfg = cfg_of('''
    def f():
        x = acquire()
        release(x)
        yield
        y = acquire()
    ''')
    result = solve_forward(cfg, Flagging())
    assert result.at_exit == {"y"}


def test_transform_applies_on_exception_edges_too():
    cfg = cfg_of('''
    def f():
        x = acquire()
        try:
            yield
        finally:
            use(x)
    ''')
    result = solve_forward(cfg, Flagging())
    yield_node = next(node for node in cfg.nodes
                      if node.label == "Expr@5")
    assert result.leaving(yield_node, "exception") == {"x*"}


def test_transform_idempotence_converges_in_loops():
    cfg = cfg_of('''
    def f(items):
        x = acquire()
        for item in items:
            yield
        use(x)
    ''')
    result = solve_forward(cfg, Flagging())
    # May-analysis: the zero-iteration path carries the unmarked fact
    # around the loop; every path THROUGH the yield carries the mark.
    assert result.at_exit == {"x", "x*"}

"""Each DET rule: one positive, one suppressed, one negative."""

from repro.analysis import lint_source


def rule_ids(source):
    return [finding.rule_id for finding in lint_source(source)]


# ------------------------------------------------------------- DET001
def test_det001_fires_on_time_time():
    assert "DET001" in rule_ids(
        "import time\n"
        "def f():\n"
        "    return time.time()\n")


def test_det001_fires_through_import_alias():
    assert "DET001" in rule_ids(
        "from time import time as wall\n"
        "def f():\n"
        "    return wall()\n")


def test_det001_fires_on_datetime_now():
    assert "DET001" in rule_ids(
        "import datetime\n"
        "stamp = datetime.datetime.now()\n")


def test_det001_suppressed():
    assert rule_ids(
        "import time\n"
        "def f():\n"
        "    return time.time()  # simlint: disable=DET001\n") == []


def test_det001_ignores_simulated_now():
    # `sim.now` / `state.now()` are the *simulated* clock.
    assert rule_ids(
        "def f(sim, state):\n"
        "    return sim.now + state.now()\n") == []


# ------------------------------------------------------------- DET002
def test_det002_fires_on_import_random():
    assert "DET002" in rule_ids("import random\n")


def test_det002_fires_on_from_random_import():
    assert "DET002" in rule_ids("from random import choice\n")


def test_det002_suppressed():
    assert rule_ids("import random  # simlint: disable=DET002\n") == []


def test_det002_ignores_numpy_random():
    assert rule_ids("import numpy.random\n") == []


# ------------------------------------------------------------- DET003
def test_det003_fires_on_urandom():
    assert "DET003" in rule_ids("import os\nkey = os.urandom(8)\n")


def test_det003_fires_on_uuid4():
    assert "DET003" in rule_ids("import uuid\ntoken = uuid.uuid4()\n")


def test_det003_suppressed():
    assert rule_ids(
        "import os\n"
        "key = os.urandom(8)  # simlint: disable=DET003\n") == []


def test_det003_ignores_deterministic_uuid():
    assert rule_ids(
        "import uuid\n"
        "token = uuid.uuid5(uuid.NAMESPACE_DNS, 'x')\n") == []


# ------------------------------------------------------------- DET004
def test_det004_fires_on_global_numpy_rng():
    assert "DET004" in rule_ids(
        "import numpy as np\nx = np.random.rand(3)\n")


def test_det004_fires_on_unseeded_default_rng():
    assert "DET004" in rule_ids(
        "import numpy as np\ngen = np.random.default_rng()\n")


def test_det004_suppressed():
    assert rule_ids(
        "import numpy as np\n"
        "gen = np.random.default_rng()  # simlint: disable=DET004\n"
    ) == []


def test_det004_allows_seeded_generators():
    assert rule_ids(
        "import numpy as np\n"
        "gen = np.random.default_rng(42)\n"
        "seq = np.random.SeedSequence(entropy=7, spawn_key=(1,))\n"
        "g2 = np.random.Generator(np.random.PCG64(seq))\n") == []


# ------------------------------------------------------------- DET005
def test_det005_fires_on_for_over_set():
    assert "DET005" in rule_ids(
        "for item in {3, 1, 2}:\n    print(item)\n")


def test_det005_fires_on_comprehension_over_set_call():
    assert "DET005" in rule_ids(
        "names = [n for n in set(values)]\n")


def test_det005_fires_on_list_of_set():
    assert "DET005" in rule_ids("order = list(set(values))\n")


def test_det005_suppressed():
    assert rule_ids(
        "for item in {3, 1, 2}:  # simlint: disable=DET005\n"
        "    print(item)\n") == []


def test_det005_allows_sorted_set():
    assert rule_ids(
        "for item in sorted({3, 1, 2}):\n    print(item)\n") == []


# ------------------------------------------------------------- DET006
def test_det006_fires_on_key_id():
    assert "DET006" in rule_ids("events.sort(key=id)\n")


def test_det006_fires_on_lambda_id():
    assert "DET006" in rule_ids(
        "ordered = sorted(events, key=lambda e: id(e))\n")


def test_det006_suppressed():
    assert rule_ids("events.sort(key=id)  # simlint: disable=DET006\n") \
        == []


def test_det006_allows_field_keys():
    assert rule_ids(
        "ordered = sorted(events, key=lambda e: e.seq)\n") == []


# --------------------------------------------------- suppression forms
def test_bare_disable_suppresses_every_rule():
    assert rule_ids("import random  # simlint: disable\n") == []


def test_family_prefix_suppresses_members():
    assert rule_ids("import random  # simlint: disable=DET\n") == []


def test_unrelated_disable_does_not_suppress():
    assert "DET002" in rule_ids(
        "import random  # simlint: disable=SQL001\n")

"""Each FLW rule: positive, suppressed, and negative cases.

The acceptance case for the family is the first test: a pooled
connection acquired in a sim process and released only on the normal
path leaks along the exception edge of the intervening ``yield``
(the kernel can throw into a waiting process), and FLW001 must say so.
"""

from repro.analysis import lint_source
from repro.analysis.flow.rules import (PoolAcquireLeakRule,
                                       ResourceRequestLeakRule,
                                       _PairingRule)


def rule_ids(source):
    return [finding.rule_id for finding in lint_source(source)]


def only(source, rule_id):
    return [finding for finding in lint_source(source)
            if finding.rule_id == rule_id]


# ------------------------------------------------------------- FLW001
def test_flw001_fires_on_exception_path_leak():
    findings = only(
        "def user(sim, pool):\n"
        "    conn = yield from pool.acquire()\n"
        "    yield sim.timeout(1.0)\n"
        "    pool.release(conn)\n",
        "FLW001")
    assert len(findings) == 1
    assert findings[0].line == 2          # reported at the acquire site
    assert "'conn'" in findings[0].message


def test_flw001_clean_with_try_finally():
    assert only(
        "def user(sim, pool):\n"
        "    conn = yield from pool.acquire()\n"
        "    try:\n"
        "        yield sim.timeout(1.0)\n"
        "    finally:\n"
        "        pool.release(conn)\n",
        "FLW001") == []


def test_flw001_fires_when_release_on_one_branch():
    assert len(only(
        "def f(pool, flag):\n"
        "    conn = pool.acquire()\n"
        "    if flag:\n"
        "        pool.release(conn)\n",
        "FLW001")) == 1


def test_flw001_return_transfers_ownership():
    assert only(
        "def f(pool):\n"
        "    conn = pool.acquire()\n"
        "    return conn\n",
        "FLW001") == []


def test_flw001_constructor_transfers_ownership():
    assert only(
        "def f(self, pool):\n"
        "    conn = pool.acquire()\n"
        "    return PooledConnection(self, conn)\n",
        "FLW001") == []


def test_flw001_attribute_store_transfers_ownership():
    assert only(
        "def f(self, pool):\n"
        "    conn = pool.acquire()\n"
        "    self.conn = conn\n",
        "FLW001") == []


def test_flw001_suppressed():
    assert only(
        "def user(sim, pool):\n"
        "    conn = yield from pool.acquire()  "
        "# simlint: disable=FLW001\n"
        "    yield sim.timeout(1.0)\n"
        "    pool.release(conn)\n",
        "FLW001") == []


# ------------------------------------------------------------- FLW002
def test_flw002_fires_on_unprotected_wait():
    findings = only(
        "def worker(sim, res):\n"
        "    req = res.request()\n"
        "    yield req\n"
        "    yield sim.timeout(1.0)\n"
        "    res.release(req)\n",
        "FLW002")
    assert len(findings) == 1
    assert findings[0].line == 2


def test_flw002_clean_with_try_finally():
    assert only(
        "def worker(sim, res):\n"
        "    req = res.request()\n"
        "    try:\n"
        "        yield req\n"
        "        yield sim.timeout(1.0)\n"
        "    finally:\n"
        "        res.release(req)\n",
        "FLW002") == []


def test_flw002_suppressed():
    assert only(
        "def worker(sim, res):\n"
        "    req = res.request()  # simlint: disable=FLW002\n"
        "    yield req\n",
        "FLW002") == []


def test_flw001_flw002_share_the_pairing_solver():
    # The family's promise: new pairing rules are one matcher away.
    assert issubclass(PoolAcquireLeakRule, _PairingRule)
    assert issubclass(ResourceRequestLeakRule, _PairingRule)
    assert PoolAcquireLeakRule.check is _PairingRule.check
    assert ResourceRequestLeakRule.check is _PairingRule.check


# ------------------------------------------------------------- FLW003
def test_flw003_fires_on_begin_without_commit():
    findings = only(
        "def f(txn):\n"
        "    txn.begin()\n"
        "    txn.write()\n",
        "FLW003")
    assert len(findings) == 1
    assert "'txn'" in findings[0].message


def test_flw003_fires_when_commit_can_be_skipped_by_exception():
    # txn.write() may raise between begin and commit.
    assert len(only(
        "def f(txn):\n"
        "    txn.begin()\n"
        "    txn.write()\n"
        "    txn.commit()\n",
        "FLW003")) == 1


def test_flw003_clean_with_catch_all_rollback():
    assert only(
        "def f(txn):\n"
        "    txn.begin()\n"
        "    try:\n"
        "        txn.write()\n"
        "    except Exception:\n"
        "        txn.rollback()\n"
        "        raise\n"
        "    txn.commit()\n",
        "FLW003") == []


def test_flw003_tracks_receiver_chains_separately():
    # a.begin() is not closed by b.commit().
    assert len(only(
        "def f(a, b):\n"
        "    a.begin()\n"
        "    b.begin()\n"
        "    b.commit()\n",
        "FLW003")) == 1


def test_flw003_suppressed():
    assert only(
        "def f(txn):\n"
        "    txn.begin()  # simlint: disable=FLW003\n",
        "FLW003") == []


# ------------------------------------------------------------- FLW004
def test_flw004_fires_on_yield_after_return():
    findings = only(
        "def gen():\n"
        "    yield 1\n"
        "    return\n"
        "    yield 2\n",
        "FLW004")
    assert len(findings) == 1
    assert findings[0].line == 4


def test_flw004_ignores_reachable_yields():
    assert only(
        "def gen(flag):\n"
        "    if flag:\n"
        "        return\n"
        "    yield 1\n",
        "FLW004") == []


def test_flw004_ignores_plain_functions():
    assert only(
        "def f():\n"
        "    return 1\n"
        "    g()\n",
        "FLW004") == []


def test_flw004_suppressed():
    assert only(
        "def gen():\n"
        "    yield 1\n"
        "    return\n"
        "    yield 2  # simlint: disable=FLW004\n",
        "FLW004") == []


# ------------------------------------------------------------- FLW005
def test_flw005_fires_on_escape_into_call():
    findings = only(
        "def f(res, log):\n"
        "    req = res.request()\n"
        "    log.append(req)\n",
        "FLW005")
    assert len(findings) == 1
    assert "log.append" in findings[0].message


def test_flw005_fires_on_escape_into_container():
    assert len(only(
        "def f(res, table, k):\n"
        "    req = res.request()\n"
        "    table[k] = req\n",
        "FLW005")) == 1


def test_flw005_allows_release_and_constructors():
    assert only(
        "def f(res):\n"
        "    req = res.request()\n"
        "    handle = ClaimHandle(req)\n"
        "    res.release(req)\n"
        "    return handle\n",
        "FLW005") == []


def test_flw005_suppressed():
    assert only(
        "def f(res, log):\n"
        "    req = res.request()\n"
        "    log.append(req)  # simlint: disable=FLW005\n",
        "FLW005") == []

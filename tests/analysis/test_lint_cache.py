"""The shared parse cache: lint and racecheck in one process parse
each file exactly once, so adding the race pass cannot regress lint
wall-time by re-parsing — the counters prove the mechanism and the
``--stats`` line surfaces it."""

import textwrap

from repro.analysis.config import LintConfig
from repro.analysis.runner import (LintStats, SourceCache, lint_paths,
                                   racecheck_paths)

CLEAN = """\
def helper(x):
    return x + 1
"""


def _tree(tmp_path, count=3):
    paths = []
    for index in range(count):
        target = tmp_path / f"m{index}.py"
        target.write_text(CLEAN, encoding="utf-8")
        paths.append(str(target))
    return paths


def test_source_cache_hits_on_unchanged_files(tmp_path):
    (path,) = _tree(tmp_path, count=1)
    cache = SourceCache()
    source, tree, error = cache.load(path)
    assert error is None and tree is not None
    assert (cache.misses, cache.hits) == (1, 0)
    again_source, again_tree, _ = cache.load(path)
    assert (cache.misses, cache.hits) == (1, 1)
    # Identity, not just equality: rules comparing node ids across
    # passes depend on getting the SAME tree object back.
    assert again_tree is tree and again_source is source


def test_source_cache_invalidates_on_edit(tmp_path):
    (path,) = _tree(tmp_path, count=1)
    cache = SourceCache()
    _, first, _ = cache.load(path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n\ndef more(y):\n    return y\n")
    _, second, _ = cache.load(path)
    assert cache.misses == 2
    assert second is not first


def test_source_cache_caches_parse_errors(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text("def broken(:\n", encoding="utf-8")
    cache = SourceCache()
    _, tree, finding = cache.load(str(target))
    assert tree is None and finding is not None
    assert finding.rule_id == "PARSE"
    _, _, again = cache.load(str(target))
    assert cache.hits == 1 and again is finding


def test_lint_then_racecheck_parses_each_file_once(tmp_path):
    paths = _tree(tmp_path)
    config = LintConfig()
    lint_stats = LintStats()
    findings = lint_paths(paths, config=config, stats=lint_stats)
    assert findings == []
    # Cold lint may parse or reuse (the module cache is process-wide),
    # but every file is accounted for exactly once.
    assert lint_stats.parses + lint_stats.parse_reuses == len(paths)

    race_stats = LintStats()
    race_findings = racecheck_paths(paths, config=config,
                                    stats=race_stats)
    assert race_findings == []
    # The race pass loads each file twice (model build + rule pass)
    # but parses NOTHING anew: zero fresh parses, every rule-pass
    # load a reuse (the model build's cache hits are not re-counted).
    assert race_stats.parses == 0
    assert race_stats.parse_reuses == len(paths)
    assert race_stats.total_seconds >= 0.0


def test_stats_render_mentions_the_parse_cache():
    stats = LintStats()
    stats.files = 3
    stats.parses = 1
    stats.parse_reuses = 5
    assert "parse cache: 1 parsed, 5 reused" in stats.render()

"""The gate: ``src/repro`` must be simlint-clean.

This is the enforcement point for the reproduction's determinism,
sim-safety and SQL invariants — a refactor that introduces a
wall-clock read, a blocking call in a sim process, or a typo'd
table/column fails CI here (and via ``python -m repro lint``).
"""

import os

from repro.analysis import (format_findings_text, lint_paths,
                            load_config)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def test_src_repro_is_lint_clean():
    config = load_config(REPO_ROOT)
    paths = [os.path.join(REPO_ROOT, path) for path in config.paths]
    findings = lint_paths(paths, config=config)
    assert not findings, "\n" + format_findings_text(findings)

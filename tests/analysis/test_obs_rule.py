"""OBS001: scoped spans must close on every path.

Same fire/suppress/negative structure as the FLW rule tests — OBS001
rides the identical CFG + dataflow core, with two twists: a
receiver-position ``span.end()`` settles the claim, and
``tracer.open_span()`` (cross-process ownership transfer) is exempt.
"""

from repro.analysis import lint_source


def only(source, rule_id="OBS001"):
    return [finding for finding in lint_source(source)
            if finding.rule_id == rule_id]


# ---------------------------------------------------------------- fires
def test_fires_when_end_missing_on_exception_path():
    findings = only(
        "def handler(sim, tracer):\n"
        "    span = tracer.span('work')\n"
        "    yield sim.timeout(1.0)\n"
        "    span.end()\n")
    assert len(findings) == 1
    assert findings[0].line == 2
    assert "'span'" in findings[0].message
    assert "ended" in findings[0].message


def test_fires_when_end_only_on_one_branch():
    assert len(only(
        "def f(tracer, flag):\n"
        "    span = tracer.span('work')\n"
        "    if flag:\n"
        "        span.end()\n")) == 1


def test_fires_for_dotted_tracer_receiver():
    assert len(only(
        "def f(self):\n"
        "    span = self.sim.tracer.span('work')\n"
        "    return None\n")) == 1


def test_fires_on_early_return_path():
    assert len(only(
        "def f(tracer, flag):\n"
        "    span = tracer.span('work')\n"
        "    if flag:\n"
        "        return 0\n"
        "    span.end()\n"
        "    return 1\n")) == 1


# ------------------------------------------------------------ suppressed
def test_suppression_comment_respected():
    assert only(
        "def f(tracer):\n"
        "    span = tracer.span('work')  # simlint: disable=OBS001\n"
        "    return None\n") == []


# -------------------------------------------------------------- negative
def test_clean_with_context_manager():
    assert only(
        "def f(sim, tracer):\n"
        "    with tracer.span('work'):\n"
        "        yield sim.timeout(1.0)\n") == []


def test_clean_with_end_in_finally():
    assert only(
        "def f(sim, tracer):\n"
        "    span = tracer.span('work')\n"
        "    try:\n"
        "        yield sim.timeout(1.0)\n"
        "    finally:\n"
        "        span.end()\n") == []


def test_clean_straight_line_end():
    assert only(
        "def f(tracer):\n"
        "    span = tracer.span('work')\n"
        "    span.end()\n"
        "    return None\n") == []


def test_open_span_is_exempt():
    """Flow spans transfer ownership across processes by design."""
    assert only(
        "def dump(tracer, slave):\n"
        "    span = tracer.open_span('repl.ship')\n"
        "    slave.note_shipped(1, span)\n") == []


def test_instant_is_exempt():
    assert only(
        "def f(tracer):\n"
        "    marker = tracer.instant('tick')\n"
        "    return marker.name\n") == []


def test_handoff_call_transfers_ownership():
    """Passing the span to another call settles the local obligation,
    exactly like the FLW escape/transfer model."""
    assert only(
        "def f(tracer, slave):\n"
        "    span = tracer.span('work')\n"
        "    slave.adopt(span)\n") == []


def test_return_transfers_ownership():
    assert only(
        "def f(tracer):\n"
        "    span = tracer.span('work')\n"
        "    return span\n") == []


def test_non_tracer_span_method_not_matched():
    """``span`` methods on non-tracer receivers are someone else's
    business (e.g. numpy's ``ptp``-style APIs)."""
    assert only(
        "def f(layout):\n"
        "    region = layout.span('header')\n"
        "    return None\n") == []


def test_null_tracer_constant_matches():
    assert len(only(
        "def f():\n"
        "    from repro.obs import NULL_TRACER\n"
        "    span = NULL_TRACER.span('work')\n"
        "    return None\n")) == 1

"""OBS002: metric/span names must carry a greppable literal fragment."""

from repro.analysis import lint_source


def rule_ids(source):
    return [finding.rule_id for finding in lint_source(source)]


# ------------------------------------------------------------ positives
def test_fully_dynamic_metric_name_fires():
    assert rule_ids(
        'def publish(metrics, name):\n'
        '    metrics.counter(name).add(1)\n') == ["OBS002"]


def test_dynamic_gauge_and_histogram_fire():
    source = (
        'def publish(registry, a, b):\n'
        '    registry.gauge(a + b).set(1.0)\n'
        '    registry.histogram(f"{a}{b}").observe(1.0)\n')
    assert rule_ids(source) == ["OBS002", "OBS002"]


def test_dynamic_span_name_fires():
    assert rule_ids(
        'def work(self, op):\n'
        '    with self.sim.tracer.span(op):\n'
        '        pass\n') == ["OBS002"]


def test_dynamic_instant_and_open_span_fire():
    source = (
        'def mark(tracer, label):\n'
        '    tracer.instant(label)\n'
        '    tracer.open_span(label)\n')
    assert rule_ids(source) == ["OBS002", "OBS002"]


def test_name_keyword_is_checked():
    assert rule_ids(
        'def publish(metrics, label):\n'
        '    metrics.counter(name=label).add(1)\n') == ["OBS002"]


# ------------------------------------------------------------ negatives
def test_literal_names_pass():
    source = (
        'def publish(metrics, tracer):\n'
        '    metrics.counter("pool.borrows").add(1)\n'
        '    tracer.instant("repl.heartbeat")\n')
    assert rule_ids(source) == []


def test_fstring_with_literal_tail_passes():
    # The idiom the codebase uses: f"{prefix}.relay_backlog" is
    # greppable by its tail.
    source = (
        'def publish(metrics, prefix, name):\n'
        '    metrics.gauge(f"{prefix}.relay_backlog").set(1.0)\n'
        '    metrics.gauge(f"slave.{name}.cpu_util").set(1.0)\n')
    assert rule_ids(source) == []


def test_literal_concatenation_passes():
    assert rule_ids(
        'def publish(metrics, prefix):\n'
        '    metrics.counter(prefix + ".ops").add(1)\n') == []


def test_module_constant_passes():
    source = (
        'GAUGE = "result.throughput"\n'
        'def publish(metrics):\n'
        '    metrics.gauge(GAUGE).set(1.0)\n')
    assert rule_ids(source) == []


def test_non_observability_receivers_ignored():
    # span()/counter() on non-tracer/metrics receivers are someone
    # else's API.
    source = (
        'def work(doc, row):\n'
        '    doc.span(row)\n'
        '    row.counter(doc).add(1)\n')
    assert rule_ids(source) == []


def test_fstring_with_no_literal_part_fires():
    assert rule_ids(
        'def publish(metrics, a):\n'
        '    metrics.counter(f"{a}").add(1)\n') == ["OBS002"]


def test_suppression_comment():
    assert rule_ids(
        'def publish(metrics, name):\n'
        '    metrics.counter(name).add(1)'
        '  # simlint: disable=OBS002\n') == []

"""SARIF 2.1.0 output: spot-checks of the schema shape GitHub reads."""

import json

from repro.analysis import all_rules, format_findings_sarif, lint_source
from repro.analysis.findings import Finding
from repro.analysis.sarif import SARIF_SCHEMA_URI, SARIF_VERSION


def document_for(findings):
    return json.loads(format_findings_sarif(findings))


def test_top_level_shape():
    document = document_for([])
    assert document["$schema"] == SARIF_SCHEMA_URI
    assert document["version"] == SARIF_VERSION == "2.1.0"
    assert len(document["runs"]) == 1
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    assert run["columnKind"] == "utf16CodeUnits"
    assert run["results"] == []


def test_driver_lists_every_rule_even_with_no_findings():
    driver = document_for([])["runs"][0]["tool"]["driver"]
    listed = {rule["id"] for rule in driver["rules"]}
    assert listed == {rule.rule_id for rule in all_rules()}
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]


def test_result_shape_and_one_based_columns():
    finding = Finding(path="./src/repro/x.py", line=7, column=4,
                      rule_id="FLW001", message="leaky",
                      hint="use finally")
    result = document_for([finding])["runs"][0]["results"][0]
    assert result["ruleId"] == "FLW001"
    assert result["level"] == "error"
    assert "leaky" in result["message"]["text"]
    assert "use finally" in result["message"]["text"]
    location = result["locations"][0]["physicalLocation"]
    # "./" is stripped so code scanning resolves the artifact.
    assert location["artifactLocation"]["uri"] == "src/repro/x.py"
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    # simlint columns are 0-based (ast), SARIF regions 1-based.
    assert location["region"]["startLine"] == 7
    assert location["region"]["startColumn"] == 5


def test_rule_index_points_into_driver_rules():
    finding = Finding(path="a.py", line=1, column=0,
                      rule_id="DET001", message="clock read")
    document = document_for([finding])
    run = document["runs"][0]
    result = run["results"][0]
    index = result["ruleIndex"]
    assert run["tool"]["driver"]["rules"][index]["id"] == "DET001"


def test_round_trip_from_lint_source():
    findings = lint_source(
        "def user(sim, pool):\n"
        "    conn = yield from pool.acquire()\n"
        "    yield sim.timeout(1.0)\n"
        "    pool.release(conn)\n",
        path="src/repro/fake.py")
    document = document_for(findings)
    results = document["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["FLW001"]
    assert results[0]["locations"][0]["physicalLocation"][
        "region"]["startLine"] == 2


def test_related_locations_carried_into_sarif():
    finding = Finding(
        path="./src/repro/x.py", line=12, column=8,
        rule_id="RACE001", message="stale write-back of 'pool.free'",
        hint="re-read after the yield",
        related=(("./src/repro/x.py", 9, 4, "'pool.free' read here"),
                 ("./src/repro/x.py", 10, 0,
                  "yield point crossed here")))
    result = document_for([finding])["runs"][0]["results"][0]
    related = result["relatedLocations"]
    assert len(related) == 2
    read, crossing = related
    location = read["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/x.py"
    assert location["region"]["startLine"] == 9
    assert location["region"]["startColumn"] == 5  # 1-based
    assert read["message"]["text"] == "'pool.free' read here"
    assert crossing["message"]["text"] == "yield point crossed here"


def test_related_locations_absent_when_finding_has_none():
    finding = Finding(path="./x.py", line=1, column=0,
                      rule_id="FLW001", message="m", hint="")
    result = document_for([finding])["runs"][0]["results"][0]
    assert "relatedLocations" not in result


def test_related_locations_in_render_and_dict():
    finding = Finding(
        path="x.py", line=12, column=8, rule_id="RACE001",
        message="stale write-back", hint="",
        related=(("x.py", 9, 4, "read here"),))
    assert "x.py:9:4: read here" in finding.render()
    payload = finding.as_dict()
    assert payload["related"] == [
        {"path": "x.py", "line": 9, "column": 4,
         "message": "read here"}]

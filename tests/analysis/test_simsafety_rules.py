"""Each SIM rule: one positive, one suppressed, one negative."""

import ast

from repro.analysis import lint_source
from repro.analysis.rules.simsafety import is_sim_process

SIM_PROCESS_PREFIX = (
    "def proc(sim):\n"
    "    yield sim.timeout(1.0)\n")


def rule_ids(source):
    return [finding.rule_id for finding in lint_source(source)]


# --------------------------------------------------- process detection
def test_generator_yielding_timeout_is_sim_process():
    tree = ast.parse(SIM_PROCESS_PREFIX)
    assert is_sim_process(tree.body[0])


def test_generator_yielding_stored_event_is_sim_process():
    tree = ast.parse(
        "def proc(sim):\n"
        "    done = sim.event()\n"
        "    yield done\n")
    assert is_sim_process(tree.body[0])


def test_plain_generator_is_not_sim_process():
    # e.g. the SQL lexer yields tokens, not events.
    tree = ast.parse(
        "def tokens(text):\n"
        "    for ch in text:\n"
        "        yield ch\n")
    assert not is_sim_process(tree.body[0])


def test_nested_helper_yields_do_not_taint_outer():
    tree = ast.parse(
        "def outer(sim):\n"
        "    def inner():\n"
        "        yield sim.timeout(1.0)\n"
        "    return inner\n")
    assert not is_sim_process(tree.body[0])


# ------------------------------------------------------------- SIM001
def test_sim001_fires_on_time_sleep():
    assert "SIM001" in rule_ids(
        "import time\n" + SIM_PROCESS_PREFIX +
        "    time.sleep(0.5)\n")


def test_sim001_suppressed():
    assert rule_ids(
        "import time\n" + SIM_PROCESS_PREFIX +
        "    time.sleep(0.5)  # simlint: disable=SIM001\n") == []


def test_sim001_ignores_sleep_outside_sim_process():
    assert rule_ids(
        "import time\n"
        "def blocking_helper():\n"
        "    time.sleep(0.5)\n") == []


# ------------------------------------------------------------- SIM002
def test_sim002_fires_on_open():
    assert "SIM002" in rule_ids(
        SIM_PROCESS_PREFIX + "    handle = open('/tmp/x')\n")


def test_sim002_fires_on_subprocess():
    assert "SIM002" in rule_ids(
        "import subprocess\n" + SIM_PROCESS_PREFIX +
        "    subprocess.run(['ls'])\n")


def test_sim002_suppressed():
    assert rule_ids(
        SIM_PROCESS_PREFIX +
        "    handle = open('/tmp/x')  # simlint: disable=SIM002\n") == []


def test_sim002_ignores_io_outside_sim_process():
    assert rule_ids(
        "def write_report(path, text):\n"
        "    with open(path, 'w') as handle:\n"
        "        handle.write(text)\n") == []


# ------------------------------------------------------------- SIM003
def test_sim003_fires_on_literal_yield():
    assert "SIM003" in rule_ids(SIM_PROCESS_PREFIX + "    yield 5\n")


def test_sim003_fires_on_bare_yield():
    assert "SIM003" in rule_ids(SIM_PROCESS_PREFIX + "    yield\n")


def test_sim003_suppressed():
    assert rule_ids(
        SIM_PROCESS_PREFIX +
        "    yield 5  # simlint: disable=SIM003\n") == []


def test_sim003_ignores_opaque_yields():
    # A yielded name/call could be an Event; no proof, no finding.
    assert rule_ids(
        SIM_PROCESS_PREFIX + "    yield make_event()\n") == []


# ------------------------------------------------------------- SIM004
def test_sim004_fires_on_straight_line_double_succeed():
    assert "SIM004" in rule_ids(
        "def f(sim):\n"
        "    ev = sim.event()\n"
        "    ev.succeed(1)\n"
        "    ev.succeed(2)\n")


def test_sim004_fires_on_succeed_then_fail():
    assert "SIM004" in rule_ids(
        "def f(sim):\n"
        "    ev = sim.event()\n"
        "    ev.succeed(1)\n"
        "    ev.fail(RuntimeError('x'))\n")


def test_sim004_suppressed():
    assert rule_ids(
        "def f(sim):\n"
        "    ev = sim.event()\n"
        "    ev.succeed(1)\n"
        "    ev.succeed(2)  # simlint: disable=SIM004\n") == []


def test_sim004_allows_rebound_event():
    assert rule_ids(
        "def f(sim):\n"
        "    ev = sim.event()\n"
        "    ev.succeed(1)\n"
        "    ev = sim.event()\n"
        "    ev.succeed(2)\n") == []


def test_sim004_allows_branched_triggers():
    # One branch succeeds, the other fails: both paths trigger once.
    assert rule_ids(
        "def f(sim, ok):\n"
        "    ev = sim.event()\n"
        "    if ok:\n"
        "        ev.succeed(1)\n"
        "    else:\n"
        "        ev.fail(RuntimeError('x'))\n") == []

"""Each SQL rule: positives, suppressions, negatives, and the
f-string placeholder substitution machinery."""

from repro.analysis import LintConfig, lint_source

#: Config with no sql-exclusions, so the synthetic paths used here are
#: always checked.
OPEN = LintConfig(sql_exclude=())


def rule_ids(source):
    return [finding.rule_id
            for finding in lint_source(source, config=OPEN)]


# ------------------------------------------------------------- SQL001
def test_sql001_fires_on_unparseable_sql():
    assert "SQL001" in rule_ids(
        'STMT = "SELECT frm FROM WHERE ORDER"\n')


def test_sql001_suppressed():
    assert rule_ids(
        'STMT = "SELECT frm FROM WHERE ORDER"'
        '  # simlint: disable=SQL001\n') == []


def test_sql001_ignores_non_sql_strings():
    assert rule_ids(
        'KIND = "insert"\n'
        'MESSAGE = "COMMIT without open transaction"\n'
        'HELP = "use the --scale flag"\n') == []


def test_sql001_skips_docstrings():
    assert rule_ids(
        'def f():\n'
        '    """SELECT broken FROM is only documentation prose."""\n'
        '    return None\n') == []


def test_sql001_lenient_on_unresolvable_placeholder():
    # {name} lands in identifier position; substitution cannot prove
    # the statement wrong, so no finding.
    assert rule_ids(
        'def create(name):\n'
        '    return f"CREATE DATABASE IF NOT EXISTS {name}"\n') == []


# ------------------------------------------------------------- SQL002
def test_sql002_fires_on_unknown_table():
    assert "SQL002" in rule_ids(
        'STMT = "SELECT id FROM no_such_table WHERE id = 1"\n')


def test_sql002_suppressed():
    assert rule_ids(
        'STMT = "SELECT id FROM no_such_table WHERE id = 1"'
        '  # simlint: disable=SQL002\n') == []


def test_sql002_knows_the_cloudstone_schema():
    assert rule_ids(
        'STMTS = [\n'
        '    "SELECT id, title FROM events WHERE owner = 3",\n'
        '    "INSERT INTO attendees (event_id, user_id) VALUES (1, 2)",\n'
        '    "UPDATE users SET events_created = 4 WHERE id = 1",\n'
        ']\n') == []


def test_sql002_learns_tables_created_in_the_same_file():
    # Mirrors replication/heartbeat.py: CREATE TABLE earlier in the
    # file puts the table in scope for later statements.
    assert rule_ids(
        'DDL = "CREATE TABLE beats (id INTEGER PRIMARY KEY, ts DOUBLE)"\n'
        'READ = "SELECT id, ts FROM beats"\n') == []


# ------------------------------------------------------------- SQL003
def test_sql003_fires_on_unknown_select_column():
    assert "SQL003" in rule_ids(
        'STMT = "SELECT no_such_column FROM events"\n')


def test_sql003_fires_on_unknown_insert_column():
    assert "SQL003" in rule_ids(
        'STMT = "INSERT INTO users (bogus) VALUES (1)"\n')


def test_sql003_fires_on_aliased_join_column():
    assert "SQL003" in rule_ids(
        'STMT = ("SELECT u.bogus FROM attendees a "\n'
        '        "JOIN users u ON u.id = a.user_id "\n'
        '        "WHERE a.event_id = 1")\n')


def test_sql003_suppressed():
    assert rule_ids(
        'STMT = "SELECT no_such_column FROM events"'
        '  # simlint: disable=SQL003\n') == []


def test_sql003_accepts_valid_join_columns():
    assert rule_ids(
        'STMT = ("SELECT u.username FROM attendees a "\n'
        '        "JOIN users u ON u.id = a.user_id "\n'
        '        "WHERE a.event_id = 1")\n') == []


# ------------------------------------------- placeholder substitution
def test_fstring_value_placeholders_are_substituted():
    assert rule_ids(
        'def build(event):\n'
        '    return f"SELECT id FROM events WHERE id = {event}"\n') == []


def test_fstring_module_constant_resolves_table_name():
    assert rule_ids(
        'TABLE = "events"\n'
        'def build(event):\n'
        '    return f"SELECT id FROM {TABLE} WHERE id = {event}"\n'
    ) == []


def test_fstring_constant_resolution_still_checks_schema():
    assert "SQL002" in rule_ids(
        'TABLE = "not_a_table"\n'
        'def build(event):\n'
        '    return f"SELECT id FROM {TABLE} WHERE id = {event}"\n')


# ----------------------------------------------------------- excludes
def test_sql_exclude_paths_skip_sql_rules():
    config = LintConfig(sql_exclude=("generated/",))
    findings = lint_source(
        'STMT = "SELECT id FROM no_such_table"\n',
        path="generated/module.py", config=config)
    assert findings == []

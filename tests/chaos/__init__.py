"""Chaos-plane tests: fault schedules, injection, recovery drills."""

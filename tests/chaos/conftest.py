"""Shared fixtures: a small live cluster to break."""

import pytest

from repro.cloud import Cloud, DEFAULT_CATALOG, MASTER_PLACEMENT
from repro.replication import ReplicationManager
from repro.sim import RandomStreams, Simulator

EU_WEST = DEFAULT_CATALOG.placement("eu-west-1a")


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cloud(sim):
    return Cloud(sim, RandomStreams(321))


@pytest.fixture
def manager(sim, cloud):
    # NTP daemons run forever and would keep a bare ``sim.run()`` from
    # terminating (same convention as the replication fixtures).
    return ReplicationManager(sim, cloud, ntp_period=None)


@pytest.fixture
def master(manager):
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE t (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, v INTEGER)")
    return master


def run_process(sim, generator, until=None):
    """Run a generator to completion and return its value."""
    process = sim.process(generator)
    sim.run(until=until)
    assert process.triggered, "process did not finish"
    return process.value

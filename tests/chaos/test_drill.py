"""Recovery drills: report contract, determinism, analyze wiring."""

import json

import pytest

from repro.chaos import (DrillConfig, Fault, FaultSchedule,
                         default_schedule, render_report_text, run_drill)
from repro.obs import Observability
from repro.workloads.cloudstone import Phases

#: A scaled-down drill so each test runs in a couple of sim minutes.
SMALL_PHASES = Phases(ramp_up=5.0, steady=50.0, ramp_down=5.0)


def small_config(schedule, **overrides):
    kwargs = dict(seed=5, n_users=8, n_slaves=2, data_size=60,
                  think_time_mean=3.0, baseline_duration=8.0,
                  phases=SMALL_PHASES, monitor_period=1.0,
                  schedule=schedule)
    kwargs.update(overrides)
    return DrillConfig(**kwargs)


def crash_schedule():
    """Degrade a slave (visible apply backlog), stall both channels,
    then kill the master: acknowledged commits die with it, so the
    loss window is measurable."""
    return FaultSchedule([
        Fault(at=10.0, kind="slave-slow", target="slave-2",
              duration=15.0, severity=0.15),
        Fault(at=38.0, kind="repl-stall", target="slave-1",
              duration=15.0),
        Fault(at=38.5, kind="repl-stall", target="slave-2",
              duration=15.0),
        Fault(at=40.2, kind="master-crash"),
    ])


@pytest.fixture(scope="module")
def crash_drill():
    return run_drill(small_config(crash_schedule()))


def test_recovery_report_failover_fields(crash_drill):
    report = crash_drill.report
    failover = report["failover"]
    assert failover is not None
    assert failover["promoted"] in ("slave-1", "slave-2")
    # The controller polls every detect_period seconds; the crash is
    # off the poll grid, so detection takes a positive fraction of it.
    assert 0.0 < failover["time_to_detect_s"] <= 0.5
    assert failover["time_to_recover_s"] >= failover["time_to_detect_s"]
    assert failover["lost_commits"] == (failover["dead_binlog_head"]
                                        - failover["candidate_received"])
    assert failover["lost_commits"] >= 0
    assert crash_drill.manager.master.name == failover["promoted"]


def test_recovery_report_sections(crash_drill):
    report = crash_drill.report
    for key in ("seed", "config", "schedule", "applied", "failover",
                "staleness", "driver", "routing", "pool", "consistency",
                "observability", "digest"):
        assert key in report, key
    assert report["schedule"]["faults"] == 4
    assert report["staleness"]["per_slave_max_s"]["slave-2"] > 0.0
    assert len(report["schedule"]["digest"]) == 64
    assert report["driver"]["operations"] > 0
    assert report["staleness"]["workload_max_s"] > 0.0
    # Writes continued on the promoted master after recovery.
    assert report["consistency"]["drained"] is True
    assert report["consistency"]["consistent"] is True
    assert report["observability"] is None  # ran unobserved


def test_report_text_rendering(crash_drill):
    text = render_report_text(crash_drill.report)
    assert "time to detect" in text
    assert "lost commits" in text
    assert crash_drill.report["digest"] in text


def test_same_seed_reports_are_byte_identical():
    schedule = FaultSchedule([
        Fault(at=10.0, kind="repl-stall", target="slave-1",
              duration=5.0),
        Fault(at=20.0, kind="slave-slow", target="slave-2",
              duration=10.0, severity=0.4),
    ])
    config = small_config(schedule, seed=9)

    def canonical():
        report = run_drill(config).report
        return json.dumps(report, sort_keys=True,
                          separators=(",", ":"))

    assert canonical() == canonical()


def test_default_schedule_covers_every_kind():
    kinds = {fault.kind for fault in default_schedule()}
    assert kinds == {"master-crash", "slave-crash", "partition",
                     "latency", "slave-slow", "repl-stall"}
    # Canonical drill wants two slaves and known regions.
    default_schedule().validate_targets(
        ["slave-1", "slave-2"], region_names=["us-east-1", "eu-west-1"])


def test_analyze_attributes_injected_slave_slow():
    """A drill whose only fault is a degraded slave CPU must come out
    of ``repro analyze`` blamed on that slave's apply thread."""
    from repro.obs.analyze import (attribute_bottleneck, build_waterfalls,
                                   from_session, phase_windows,
                                   signals_from_trace)
    schedule = FaultSchedule([
        Fault(at=2.0, kind="slave-slow", target="slave-1",
              duration=55.0, severity=0.08),
    ])
    observe = Observability(monitor_period=None)
    result = run_drill(small_config(schedule, seed=3, n_users=12,
                                    think_time_mean=2.0),
                       observe=observe)
    data = from_session(observe)
    signals = signals_from_trace(data, phase_windows(data),
                                 build_waterfalls(data))
    diagnosis = attribute_bottleneck(signals)
    assert diagnosis.resource == "slave-cpu"
    assert diagnosis.evidence["worst_slave"] == "slave-1"
    assert result.report["observability"]["droppedSpans"] == 0

"""Fault and FaultSchedule: validation, ordering, seeded plans."""

import pytest

from repro.chaos import FAULT_KINDS, Fault, FaultSchedule
from repro.sim import RandomStreams


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        Fault(at=1.0, kind="meteor")


def test_negative_time_and_duration_rejected():
    with pytest.raises(ValueError):
        Fault(at=-1.0, kind="master-crash")
    with pytest.raises(ValueError):
        Fault(at=0.0, kind="partition", target="a|b", duration=-2.0)


@pytest.mark.parametrize("kind", ["slave-crash", "slave-slow",
                                  "repl-stall"])
def test_slave_kinds_need_a_target(kind):
    with pytest.raises(ValueError):
        Fault(at=0.0, kind=kind, severity=0.5)


def test_partition_target_must_name_two_regions():
    with pytest.raises(ValueError):
        Fault(at=0.0, kind="partition", target="us-east-1")


def test_latency_needs_positive_severity():
    with pytest.raises(ValueError):
        Fault(at=0.0, kind="latency", target="a|b")


@pytest.mark.parametrize("severity", [0.0, 1.5, -0.2])
def test_slave_slow_severity_is_a_speed_factor(severity):
    with pytest.raises(ValueError):
        Fault(at=0.0, kind="slave-slow", target="s1", severity=severity)


def test_regions_property():
    fault = Fault(at=0.0, kind="partition", target="us-east-1|eu-west-1",
                  duration=1.0)
    assert fault.regions == ("us-east-1", "eu-west-1")
    everywhere = Fault(at=0.0, kind="latency", target="*", severity=50.0)
    assert everywhere.regions == ()


def test_schedule_sorts_and_reports_horizon():
    schedule = FaultSchedule([
        Fault(at=30.0, kind="master-crash"),
        Fault(at=5.0, kind="slave-slow", target="s1", duration=40.0,
              severity=0.5),
    ])
    assert [fault.at for fault in schedule] == [5.0, 30.0]
    assert schedule.horizon == 45.0
    assert FaultSchedule([]).horizon == 0.0


def test_timeline_renders_every_fault():
    schedule = FaultSchedule([
        Fault(at=1.5, kind="partition", target="a|b", duration=2.0),
        Fault(at=9.0, kind="latency", target="*", duration=3.0,
              severity=120.0),
    ])
    lines = schedule.timeline().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("t=+00001.500s")
    assert "partition" in lines[0] and "for 2.0s" in lines[0]
    assert "extra_ms=120" in lines[1]


def _plan(seed, **overrides):
    kwargs = dict(horizon=100.0, slaves=["s1", "s2"],
                  region_pairs=[("us-east-1", "eu-west-1")],
                  n_faults=6, include_master_crash=True)
    kwargs.update(overrides)
    return FaultSchedule.random_plan(RandomStreams(seed), **kwargs)


def test_random_plan_same_seed_is_identical():
    first, second = _plan(7), _plan(7)
    assert first.timeline() == second.timeline()
    assert first.digest() == second.digest()


def test_random_plan_different_seed_differs():
    assert _plan(7).digest() != _plan(8).digest()


def test_random_plan_respects_bounds():
    schedule = _plan(11, n_faults=10)
    crashes = [fault for fault in schedule
               if fault.kind == "master-crash"]
    assert len(crashes) == 1 and crashes[0].at == 80.0
    for fault in schedule:
        assert fault.kind in FAULT_KINDS
        if fault.kind != "master-crash":
            assert fault.at <= 70.0
    schedule.validate_targets(["s1", "s2"],
                              region_names=["us-east-1", "eu-west-1"])


def test_random_plan_validations():
    with pytest.raises(ValueError):
        _plan(1, horizon=0.0)
    with pytest.raises(ValueError):
        _plan(1, slaves=[])


def test_validate_targets_rejects_unknown_slave():
    schedule = FaultSchedule([Fault(at=0.0, kind="slave-slow",
                                    target="ghost", severity=0.5)])
    with pytest.raises(ValueError):
        schedule.validate_targets(["s1"])


def test_validate_targets_rejects_unknown_region():
    schedule = FaultSchedule([Fault(at=0.0, kind="partition",
                                    target="mars|venus", duration=1.0)])
    with pytest.raises(ValueError):
        schedule.validate_targets(["s1"], region_names=["us-east-1"])
    # Without region names the link targets are not checked.
    schedule.validate_targets(["s1"])

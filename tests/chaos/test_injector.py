"""ChaosInjector: each fault kind applied to a live cluster."""

from repro.chaos import ChaosInjector, Fault, FaultSchedule
from repro.cloud import MASTER_PLACEMENT
from tests.chaos.conftest import EU_WEST, run_process


def inject(sim, cloud, manager, faults):
    injector = ChaosInjector(sim, manager, cloud.network,
                             FaultSchedule(faults))
    injector.start()
    return injector


def test_partition_heal_burst_flush_preserves_order(sim, cloud, manager,
                                                    master):
    slave = manager.add_slave(EU_WEST, name="far")
    injector = inject(sim, cloud, manager, [
        Fault(at=1.0, kind="partition", target="us-east-1|eu-west-1",
              duration=3.0)])
    channel = master.channel_to(slave)

    def writer(sim):
        yield from master.perform("INSERT INTO t (v) VALUES (0)")
        yield sim.timeout(2.0)  # mid-partition
        for i in range(1, 6):
            yield from master.perform(f"INSERT INTO t (v) VALUES ({i})")
        return channel.held_count, slave.applied_position

    held, applied_mid = run_process(sim, writer(sim))
    sim.run()
    assert held >= 5  # the burst was held, not dropped
    assert applied_mid < master.binlog.head_position
    rows = slave.admin("SELECT v FROM t ORDER BY id").result.rows
    assert rows == [(i,) for i in range(6)]  # flushed in binlog order
    assert manager.verify_consistency()
    actions = [(action, fault.kind)
               for _, fault, action, _ in injector.log]
    assert actions == [("begin", "partition"), ("end", "partition")]


def test_repl_stall_freezes_then_flushes(sim, cloud, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT, name="s1")
    inject(sim, cloud, manager, [
        Fault(at=1.0, kind="repl-stall", target="s1", duration=4.0)])

    def scenario(sim):
        yield sim.timeout(2.0)  # stall active
        for i in range(5):
            yield from master.perform(f"INSERT INTO t (v) VALUES ({i})")
        yield sim.timeout(1.0)  # still stalled: nothing ships
        return slave.received_position

    received_mid = run_process(sim, scenario(sim))
    sim.run()
    assert received_mid < master.binlog.head_position
    assert manager.all_caught_up()
    assert manager.verify_consistency()


def test_slave_slow_degrades_then_restores(sim, cloud, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT, name="s1")
    inject(sim, cloud, manager, [
        Fault(at=1.0, kind="slave-slow", target="s1", duration=2.0,
              severity=0.25)])

    def sampler(sim):
        yield sim.timeout(2.0)
        during = slave.instance.degradation
        yield sim.timeout(2.0)
        return during, slave.instance.degradation

    during, after = run_process(sim, sampler(sim))
    assert during == 0.25
    assert after == 1.0


def test_latency_surge_applies_and_clears(sim, cloud, manager, master):
    manager.add_slave(EU_WEST, name="far")
    inject(sim, cloud, manager, [
        Fault(at=1.0, kind="latency", target="us-east-1|eu-west-1",
              duration=2.0, severity=150.0)])

    def sampler(sim):
        yield sim.timeout(2.0)
        during = cloud.network.surge_ms(MASTER_PLACEMENT, EU_WEST)
        yield sim.timeout(2.0)
        return during, cloud.network.surge_ms(MASTER_PLACEMENT, EU_WEST)

    during, after = run_process(sim, sampler(sim))
    assert during == 150.0
    assert after == 0.0


def test_master_crash_is_one_shot_and_idempotent(sim, cloud, manager,
                                                 master):
    manager.add_slave(MASTER_PLACEMENT, name="s1")
    injector = inject(sim, cloud, manager, [
        Fault(at=1.0, kind="master-crash"),
        Fault(at=2.0, kind="master-crash"),  # already dead: skipped
    ])
    sim.run()
    assert not master.online
    assert not master.instance.running
    assert master.instance.crash_count == 1
    actions = [action for _, _, action, _ in injector.log]
    assert actions == ["begin", "skip"]


def test_unknown_slave_target_is_skipped_not_fatal(sim, cloud, manager,
                                                   master):
    injector = inject(sim, cloud, manager, [
        Fault(at=1.0, kind="slave-slow", target="ghost", duration=2.0,
              severity=0.5)])
    sim.run()
    assert [action for _, _, action, _ in injector.log] == ["skip"]


def test_crash_during_apply_consistent_after_resync(sim, cloud, manager,
                                                    master):
    """A slave killed mid-replication restarts, resyncs from a master
    snapshot and converges to an identical copy — no half-applied
    transactions survive the crash."""
    slave = manager.add_slave(EU_WEST, name="s1")
    inject(sim, cloud, manager, [
        Fault(at=1.0, kind="slave-crash", target="s1", duration=5.0)])

    def writer(sim):
        # Write across the whole fault window: before the crash, while
        # the slave is down, and after the restart+resync.
        for i in range(80):
            yield from master.perform(f"INSERT INTO t (v) VALUES ({i})")
            yield sim.timeout(0.1)

    run_process(sim, writer(sim))
    sim.run()
    assert slave.online and slave.instance.running
    assert slave.instance.crash_count == 1
    assert slave.instance.total_downtime == 5.0
    assert manager.all_caught_up()
    assert manager.verify_consistency()
    assert slave.admin("SELECT COUNT(*) FROM t").result.scalar() == 80


def test_injector_emits_fault_metrics(sim, cloud, manager, master):
    from repro.obs import Observability
    observe = Observability(monitor_period=None)
    observe.attach(sim)
    manager.add_slave(MASTER_PLACEMENT, name="s1")
    inject(sim, cloud, manager, [
        Fault(at=1.0, kind="slave-slow", target="s1", duration=2.0,
              severity=0.5)])
    sim.run()
    assert "chaos.faults" in observe.metrics
    assert "chaos.fault.slave-slow" in observe.metrics

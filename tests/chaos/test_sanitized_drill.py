"""The sanitizer must be a pure observer: a sanitized drill produces
the byte-identical recovery report of the unsanitized run, and the
repaired cluster code generates zero reports — the contract the CI
sanitizer-smoke job enforces."""

import json

import pytest

from repro.analysis.race import RaceSanitizer
from repro.chaos import run_drill

from tests.chaos.test_drill import crash_schedule, small_config


@pytest.fixture(scope="module")
def paired_runs():
    config = small_config(crash_schedule())
    plain = run_drill(config)
    sanitizer = RaceSanitizer()
    sanitized = run_drill(config, sanitizer=sanitizer)
    return plain, sanitized, sanitizer


def test_sanitized_drill_reports_no_races(paired_runs):
    _plain, _sanitized, sanitizer = paired_runs
    assert sanitizer.reports == [], "\n".join(
        report.render() for report in sanitizer.reports)


def test_sanitizer_does_not_perturb_the_drill(paired_runs):
    plain, sanitized, _sanitizer = paired_runs
    # Byte-identical recovery reports: instrumentation must not move
    # a single event, value or timestamp.
    plain_doc = json.dumps(plain.report, sort_keys=True)
    sanitized_doc = json.dumps(sanitized.report, sort_keys=True)
    assert plain_doc == sanitized_doc


def test_sanitizer_instrumented_the_cluster_surfaces(paired_runs):
    _plain, _sanitized, sanitizer = paired_runs
    labels = sanitizer.summary()["instrumented"]
    assert "pool" in labels
    assert "proxy" in labels
    assert "manager" in labels
    assert any(label.startswith("slave.") for label in labels)

"""Tests for drifting clocks and the NTP daemon."""

import numpy as np
import pytest

from repro.cloud import LocalClock, NtpConfig, NtpDaemon
from repro.sim import RandomStreams, Simulator


def test_clock_without_drift_tracks_sim_time():
    sim = Simulator()
    clock = LocalClock(sim)
    assert clock.now() == 0.0
    sim.run(until=100.0)
    assert clock.now() == 100.0
    assert clock.error() == 0.0


def test_clock_offset():
    sim = Simulator()
    clock = LocalClock(sim, offset=0.007)
    assert clock.error() == pytest.approx(0.007)
    sim.run(until=10.0)
    assert clock.now() == pytest.approx(10.007)


def test_clock_drift_accumulates_linearly():
    sim = Simulator()
    clock = LocalClock(sim, offset=0.0, drift_rate=36e-6)
    sim.run(until=1200.0)  # 20 minutes
    assert clock.error() == pytest.approx(1200.0 * 36e-6)
    assert clock.error() == pytest.approx(0.0432)


def test_step_to_error_reanchors_drift():
    sim = Simulator()
    clock = LocalClock(sim, offset=0.5, drift_rate=100e-6)
    sim.run(until=100.0)
    clock.step_to_error(0.001)
    assert clock.error() == pytest.approx(0.001)
    sim.run(until=200.0)
    assert clock.error() == pytest.approx(0.001 + 100.0 * 100e-6)


def test_slew_shifts_without_reanchoring():
    sim = Simulator()
    clock = LocalClock(sim, offset=0.0, drift_rate=10e-6)
    sim.run(until=100.0)
    before = clock.error()
    clock.slew(-0.0005)
    assert clock.error() == pytest.approx(before - 0.0005)


def test_difference_between_two_clocks():
    sim = Simulator()
    a = LocalClock(sim, offset=0.010, drift_rate=20e-6)
    b = LocalClock(sim, offset=0.003, drift_rate=-16e-6)
    assert a.difference(b) == pytest.approx(0.007)
    sim.run(until=1200.0)
    assert a.difference(b) == pytest.approx(0.007 + 1200.0 * 36e-6)


# ------------------------------------------------------------------- NTP
def test_ntp_rejects_nonpositive_period():
    sim = Simulator()
    clock = LocalClock(sim)
    with pytest.raises(ValueError):
        NtpDaemon(sim, clock, RandomStreams(0), period=0.0)


def test_ntp_sync_once_leaves_drift_unchecked():
    sim = Simulator()
    clock = LocalClock(sim, offset=0.5, drift_rate=40e-6)
    daemon = NtpDaemon(sim, clock, RandomStreams(1), period=None,
                       config=NtpConfig(residual_sigma_s=0.003))
    sim.run(until=1200.0)
    assert daemon.sync_count == 1
    # The big boot offset was removed but drift accumulated again.
    assert abs(clock.error()) < 0.07
    assert abs(clock.error()) > 0.03  # ~48 ms of drift re-accumulated


def test_ntp_periodic_keeps_error_bounded():
    sim = Simulator()
    clock = LocalClock(sim, offset=0.5, drift_rate=40e-6)
    daemon = NtpDaemon(sim, clock, RandomStreams(1), period=1.0,
                       config=NtpConfig(residual_sigma_s=0.003))
    sim.run(until=120.0)
    assert daemon.sync_count == 121  # once at t=0 plus every second
    assert abs(clock.error()) < 0.02


def test_ntp_every_second_pair_difference_matches_paper_band():
    """Two clocks synced every second should differ by a few ms
    (the paper reports a 1-8 ms band with median 3.30 ms)."""
    sim = Simulator()
    streams = RandomStreams(42)
    a = LocalClock(sim, offset=0.030, drift_rate=25e-6)
    b = LocalClock(sim, offset=-0.020, drift_rate=-12e-6)
    NtpDaemon(sim, a, streams, period=1.0, stream_name="ntp.a")
    NtpDaemon(sim, b, streams, period=1.0, stream_name="ntp.b")
    samples = []

    def sampler(sim):
        while True:
            yield sim.timeout(10.0)
            samples.append(abs(a.difference(b)) * 1000.0)

    sim.process(sampler(sim))
    sim.run(until=1200.0)
    median = float(np.median(samples))
    assert 1.0 < median < 8.0
    assert max(samples) < 25.0


def test_ntp_first_sync_delay():
    sim = Simulator()
    clock = LocalClock(sim, offset=1.0)
    NtpDaemon(sim, clock, RandomStreams(3), period=None,
              config=NtpConfig(residual_sigma_s=0.0, first_sync_at=50.0))
    sim.run(until=49.0)
    assert clock.error() == pytest.approx(1.0)
    sim.run(until=51.0)
    assert clock.error() == pytest.approx(0.0)

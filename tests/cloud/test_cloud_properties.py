"""Property-based tests over the cloud substrate."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import (Cloud, DEFAULT_CATALOG, LocalClock, Network,
                         PAPER_LATENCY, SMALL)
from repro.replication import OrderedChannel
from repro.sim import RandomStreams, Simulator

ALL_ZONES = [zone
             for name in DEFAULT_CATALOG.region_names
             for zone in DEFAULT_CATALOG.region(name).zones]


def test_latency_classes_are_symmetric_and_ordered():
    """For every placement pair: symmetric medians, and same-zone <=
    cross-zone <= cross-region."""
    placements = [DEFAULT_CATALOG.placement(z) for z in ALL_ZONES]
    for a, b in itertools.product(placements, placements):
        forward = PAPER_LATENCY.median_one_way_ms(a, b)
        backward = PAPER_LATENCY.median_one_way_ms(b, a)
        assert forward == backward
        if a == b:
            assert forward == PAPER_LATENCY.loopback_ms
        elif a.same_region(b):
            assert forward == PAPER_LATENCY.cross_zone_ms
        else:
            assert forward == PAPER_LATENCY.cross_region_ms


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_latency_samples_always_positive(seed):
    sim = Simulator()
    network = Network(sim, RandomStreams(seed))
    a = DEFAULT_CATALOG.placement("us-east-1a")
    b = DEFAULT_CATALOG.placement("eu-west-1a")
    for _ in range(50):
        assert network.sample_one_way(a, b) > 0.0
        assert network.sample_one_way(a, a) > 0.0


@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       n_messages=st.integers(min_value=1, max_value=60))
@settings(max_examples=60, deadline=None)
def test_ordered_channel_fifo_for_any_seed(seed, n_messages):
    """Jitter must never reorder channel deliveries."""
    sim = Simulator()
    network = Network(sim, RandomStreams(seed))
    inbox = []
    channel = OrderedChannel(
        network, DEFAULT_CATALOG.placement("us-east-1a"),
        DEFAULT_CATALOG.placement("ap-northeast-1a"),
        on_delivery=inbox.append)

    def sender(sim, channel):
        for i in range(n_messages):
            channel.send(i)
            yield sim.timeout(0.001)

    sim.process(sender(sim, channel))
    sim.run()
    assert inbox == list(range(n_messages))


@given(offset=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
       drift_ppm=st.floats(min_value=-100.0, max_value=100.0,
                           allow_nan=False),
       t1=st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
       t2=st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_clock_error_is_affine_in_time(offset, drift_ppm, t1, t2):
    lo, hi = sorted((t1, t2))
    sim = Simulator()
    clock = LocalClock(sim, offset=offset, drift_rate=drift_ppm * 1e-6)
    sim.run(until=lo) if lo > 0 else None
    error_lo = clock.error()
    sim.run(until=hi) if hi > sim.now else None
    error_hi = clock.error()
    expected_growth = (hi - lo) * drift_ppm * 1e-6
    assert error_hi - error_lo == pytest.approx(expected_growth, abs=1e-9)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_instance_speed_always_positive_and_bounded(seed):
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(seed))
    for _ in range(30):
        instance = cloud.launch(
            SMALL, DEFAULT_CATALOG.placement("us-east-1a"))
        assert 0.2 < instance.effective_speed < 1.6


@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       work=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_compute_time_scales_inverse_to_speed(seed, work):
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(seed))
    instance = cloud.launch(SMALL,
                            DEFAULT_CATALOG.placement("us-east-1a"))
    assert instance.service_time(work) == pytest.approx(
        work / instance.effective_speed)

"""Tests for instances, the hardware lottery and the Cloud account."""

import numpy as np
import pytest

from repro.cloud import (Cloud, LARGE, MASTER_PLACEMENT,
                         SMALL)
from repro.cloud.instance import draw_instance_hardware
from repro.sim import RandomStreams, Simulator


def make_cloud(seed=0):
    sim = Simulator()
    return sim, Cloud(sim, RandomStreams(seed))


def test_launch_names_and_registry():
    _sim, cloud = make_cloud()
    a = cloud.launch(SMALL, MASTER_PLACEMENT)
    b = cloud.launch(SMALL, MASTER_PLACEMENT, name="master")
    assert a.name == "i-00001"
    assert cloud.instances == {"i-00001": a, "master": b}


def test_duplicate_name_rejected():
    _sim, cloud = make_cloud()
    cloud.launch(SMALL, MASTER_PLACEMENT, name="x")
    with pytest.raises(ValueError):
        cloud.launch(SMALL, MASTER_PLACEMENT, name="x")


def test_terminate_removes_instance():
    _sim, cloud = make_cloud()
    inst = cloud.launch(SMALL, MASTER_PLACEMENT)
    cloud.terminate(inst)
    assert not inst.running
    assert inst.name not in cloud.instances


def test_instance_types():
    assert SMALL.cores == 1
    assert LARGE.cores == 2
    assert LARGE.ecu_per_core > SMALL.ecu_per_core


def test_small_lottery_cov_near_paper():
    """Schad et al. (cited by the paper) report ~21% CoV for small
    instances; the lottery should land in that neighbourhood."""
    streams = RandomStreams(11)
    speeds = []
    for _ in range(4000):
        model, noise = draw_instance_hardware(streams, SMALL)
        speeds.append(model.speed_factor * noise)
    cov = float(np.std(speeds) / np.mean(speeds))
    assert 0.14 < cov < 0.28


def test_large_lottery_tighter_than_small():
    streams = RandomStreams(12)
    small_speeds = [m.speed_factor * n for m, n in
                    (draw_instance_hardware(streams, SMALL)
                     for _ in range(1000))]
    large_speeds = [m.speed_factor * n for m, n in
                    (draw_instance_hardware(streams, LARGE)
                     for _ in range(1000))]
    cov_small = np.std(small_speeds) / np.mean(small_speeds)
    cov_large = np.std(large_speeds) / np.mean(large_speeds)
    assert cov_large < cov_small


def test_compute_charges_cpu_time():
    sim, cloud = make_cloud(seed=1)
    inst = cloud.launch(SMALL, MASTER_PLACEMENT)
    done = []

    def job(sim, inst):
        yield from inst.compute(0.100)
        done.append(sim.now)

    sim.process(job(sim, inst))
    sim.run()
    expected = 0.100 / inst.effective_speed
    assert done[0] == pytest.approx(expected)
    assert inst.busy_time == pytest.approx(expected)


def test_compute_queues_on_single_core():
    sim, cloud = make_cloud(seed=2)
    inst = cloud.launch(SMALL, MASTER_PLACEMENT)
    finish = []

    def job(sim, inst, tag):
        yield from inst.compute(0.050)
        finish.append((tag, sim.now))

    sim.process(job(sim, inst, "a"))
    sim.process(job(sim, inst, "b"))
    sim.run()
    (t1, when1), (t2, when2) = finish
    assert when2 == pytest.approx(2 * when1)  # serialized on one core


def test_large_instance_parallelism():
    sim, cloud = make_cloud(seed=3)
    inst = cloud.launch(LARGE, MASTER_PLACEMENT)
    finish = []

    def job(sim, inst):
        yield from inst.compute(0.050)
        finish.append(sim.now)

    sim.process(job(sim, inst))
    sim.process(job(sim, inst))
    sim.run()
    assert finish[0] == pytest.approx(finish[1])  # ran in parallel


def test_utilization_window():
    sim, cloud = make_cloud(seed=4)
    inst = cloud.launch(SMALL, MASTER_PLACEMENT)

    def jobs(sim, inst):
        while True:
            yield from inst.compute(0.010)
            yield sim.timeout(inst.service_time(0.010))  # 50% duty

    sim.process(jobs(sim, inst))
    sim.run(until=10.0)
    start, busy0 = sim.now, inst.busy_time
    sim.run(until=110.0)
    util = inst.utilization(start, busy0)
    assert 0.4 < util < 0.6


def test_clock_override_on_launch():
    _sim, cloud = make_cloud(seed=5)
    inst = cloud.launch(SMALL, MASTER_PLACEMENT,
                        offset=0.007, drift_rate=36e-6)
    assert inst.clock.error() == pytest.approx(0.007)
    assert inst.clock.drift_rate == pytest.approx(36e-6)


def test_start_ntp_on_instance():
    sim, cloud = make_cloud(seed=6)
    inst = cloud.launch(SMALL, MASTER_PLACEMENT, offset=0.5)
    cloud.start_ntp(inst, period=1.0)
    sim.run(until=5.0)
    assert abs(inst.clock.error()) < 0.05


def test_placement_helper():
    _sim, cloud = make_cloud()
    p = cloud.placement("eu-west-1a")
    assert p.region == "eu-west-1"


def test_effective_speed_composition():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(7))
    inst = cloud.launch(SMALL, MASTER_PLACEMENT)
    assert inst.effective_speed == pytest.approx(
        SMALL.ecu_per_core * inst.cpu_model.speed_factor * inst.host_noise)
    assert "Instance(" in repr(inst)

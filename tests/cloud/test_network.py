"""Tests for the latency model and network delivery."""

import numpy as np
import pytest

from repro.cloud import DEFAULT_CATALOG, LatencyModel, Network, PAPER_LATENCY
from repro.sim import RandomStreams, Simulator

SAME_A = DEFAULT_CATALOG.placement("us-east-1a")
SAME_B = DEFAULT_CATALOG.placement("us-east-1b")
EU = DEFAULT_CATALOG.placement("eu-west-1a")


def make_network(seed=0, model=PAPER_LATENCY):
    sim = Simulator()
    return sim, Network(sim, RandomStreams(seed), model)


def test_median_latency_classes_match_paper():
    model = PAPER_LATENCY
    assert model.median_one_way_ms(SAME_A, SAME_A) == pytest.approx(0.05)
    assert model.median_one_way_ms(SAME_A, SAME_B) == 21.0
    assert model.median_one_way_ms(SAME_A, EU) == 173.0
    same_zone_other = DEFAULT_CATALOG.placement("us-east-1a")
    assert model.median_one_way_ms(SAME_A, same_zone_other) == pytest.approx(0.05)


def test_same_zone_distinct_instances_value():
    # Two placements with the same zone string compare equal, so the
    # same-zone class applies between *different* zones sharing a zone
    # name never happens; the 16 ms class is exercised via LatencyModel
    # directly.
    model = LatencyModel()
    class FakePlacement:
        region = "r"
        zone = "z1"
        def __eq__(self, other):
            return False
        def same_zone(self, other):
            return True
        def same_region(self, other):
            return True
    a, b = FakePlacement(), FakePlacement()
    assert model.median_one_way_ms(a, b) == 16.0


def test_region_pair_override():
    model = LatencyModel(region_pair_ms={
        frozenset(("us-east-1", "eu-west-1")): 90.0})
    assert model.median_one_way_ms(SAME_A, EU) == 90.0
    ap = DEFAULT_CATALOG.placement("ap-northeast-1a")
    assert model.median_one_way_ms(SAME_A, ap) == 173.0


def test_sample_jitters_around_median():
    _sim, net = make_network(seed=1)
    samples = [net.sample_one_way(SAME_A, EU) * 1000.0 for _ in range(3000)]
    assert abs(np.median(samples) - 173.0) < 4.0
    assert np.std(samples) > 1.0  # jitter present


def test_send_delivers_payload_after_latency():
    sim, net = make_network(seed=2)
    inbox = []

    def receiver(sim, net):
        ev = net.send(SAME_A, EU, payload={"op": "hello"})
        value = yield ev
        inbox.append((sim.now, value))

    sim.process(receiver(sim, net))
    sim.run()
    when, value = inbox[0]
    assert value == {"op": "hello"}
    assert 0.1 < when < 0.3  # ~173 ms one way


def test_send_on_delivery_callback():
    sim, net = make_network(seed=3)
    mailbox = []
    net.send(SAME_A, SAME_B, payload="x", on_delivery=mailbox.append)
    sim.run()
    assert mailbox == ["x"]


def test_send_counters():
    sim, net = make_network(seed=4)
    net.send(SAME_A, SAME_B, payload="x", size_bytes=100)
    net.send(SAME_A, SAME_B, payload="y", size_bytes=50)
    sim.run()
    assert net.messages_sent == 2
    assert net.bytes_sent == 150


def test_ping_rtt_half_matches_paper_classes():
    _sim, net = make_network(seed=5)
    half_rtts = {
        "cross_zone": np.median([net.ping(SAME_A, SAME_B) / 2
                                 for _ in range(1200)]),
        "cross_region": np.median([net.ping(SAME_A, EU) / 2
                                   for _ in range(1200)]),
    }
    assert abs(half_rtts["cross_zone"] - 21.0) < 2.0
    assert abs(half_rtts["cross_region"] - 173.0) < 6.0


def test_round_trip_event():
    sim, net = make_network(seed=6)
    done = []

    def prober(sim, net):
        rtt = yield net.round_trip(SAME_A, EU)
        done.append((sim.now, rtt))

    sim.process(prober(sim, net))
    sim.run()
    when, rtt = done[0]
    assert when == pytest.approx(rtt)
    assert 0.25 < rtt < 0.5


def test_latency_floor():
    model = LatencyModel(loopback_ms=0.0, floor_ms=0.01)
    sim = Simulator()
    net = Network(sim, RandomStreams(7), model)
    sample = net.sample_one_way(SAME_A, SAME_A)
    assert sample >= 0.01 / 1000.0

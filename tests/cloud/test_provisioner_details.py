"""Provisioner details: clock profiles, pinning, NTP wiring."""

import numpy as np
import pytest

from repro.cloud import (ClockProfile, Cloud, MASTER_PLACEMENT, SMALL)
from repro.cloud.instance import CpuModel
from repro.sim import RandomStreams, Simulator


def test_clock_profile_shapes_boot_state():
    sim = Simulator()
    profile = ClockProfile(boot_offset_sigma_s=0.5, drift_ppm_sigma=100.0)
    cloud = Cloud(sim, RandomStreams(3), clock_profile=profile)
    offsets = [abs(cloud.launch(SMALL, MASTER_PLACEMENT).clock.error())
               for _ in range(200)]
    assert np.std(offsets) > 0.1  # wide profile produces wide offsets


def test_default_clock_profile_matches_paper_scale():
    profile = ClockProfile()
    # Tens of ms of boot offset; tens of ppm of drift.
    assert 0.005 < profile.boot_offset_sigma_s < 0.1
    assert 5.0 < profile.drift_ppm_sigma < 50.0


def test_pin_hardware_overrides_lottery():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(4))
    instance = cloud.launch(SMALL, MASTER_PLACEMENT)
    instance.pin_hardware(CpuModel("reference", 1.0))
    assert instance.effective_speed == pytest.approx(1.0)
    assert instance.cpu_model.name == "reference"


def test_drift_and_offset_overrides_are_exact():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(5))
    instance = cloud.launch(SMALL, MASTER_PLACEMENT, offset=0.007,
                            drift_rate=36e-6)
    sim.run(until=1000.0)
    assert instance.clock.error() == pytest.approx(0.007 + 0.036)


def test_distinct_instances_draw_distinct_clocks():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(6))
    a = cloud.launch(SMALL, MASTER_PLACEMENT)
    b = cloud.launch(SMALL, MASTER_PLACEMENT)
    # "Instances launched by a single account never run in the same
    # physical node" — their clocks must be independent draws.
    assert a.clock.error() != b.clock.error() \
        or a.clock.drift_rate != b.clock.drift_rate

"""Tests for the region/zone catalogue."""

import pytest

from repro.cloud import DEFAULT_CATALOG, MASTER_PLACEMENT, Placement, Region


def test_master_placement_matches_paper():
    assert MASTER_PLACEMENT.region == "us-east-1"
    assert MASTER_PLACEMENT.zone == "us-east-1a"


def test_placement_resolution():
    p = DEFAULT_CATALOG.placement("eu-west-1a")
    assert p.region == "eu-west-1"
    assert p.zone == "eu-west-1a"


def test_unknown_zone_raises():
    with pytest.raises(KeyError):
        DEFAULT_CATALOG.placement("mars-central-1a")


def test_unknown_region_raises():
    with pytest.raises(KeyError):
        DEFAULT_CATALOG.region("mars-central-1")


def test_same_zone_relationships():
    a = DEFAULT_CATALOG.placement("us-east-1a")
    b = DEFAULT_CATALOG.placement("us-east-1b")
    c = DEFAULT_CATALOG.placement("eu-west-1a")
    assert a.same_zone(a)
    assert not a.same_zone(b)
    assert a.same_region(b)
    assert not a.same_region(c)


def test_paper_regions_all_present():
    for region in ("us-east-1", "us-west-1", "eu-west-1",
                   "ap-southeast-1", "ap-northeast-1"):
        assert region in DEFAULT_CATALOG


def test_region_placement_helper():
    region = Region("r-1", ("r-1a", "r-1b"))
    assert region.placement("a") == Placement("r-1", "r-1a")
    with pytest.raises(KeyError):
        region.placement("z")


def test_placement_is_hashable_and_str():
    p = DEFAULT_CATALOG.placement("us-east-1a")
    assert str(p) == "us-east-1a"
    assert {p: 1}[Placement("us-east-1", "us-east-1a")] == 1

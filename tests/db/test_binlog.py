"""Binlog tests."""

from repro.db import Binlog
from repro.sim import Simulator


def test_append_assigns_dense_positions():
    sim = Simulator()
    log = Binlog(sim, server_id=1)
    e1 = log.append("INSERT INTO t (a) VALUES (1)", "app", 10.0)
    e2 = log.append("INSERT INTO t (a) VALUES (2)", "app", 11.0)
    assert (e1.position, e2.position) == (1, 2)
    assert log.head_position == 2


def test_event_metadata():
    sim = Simulator()
    sim.run(until=5.0)
    log = Binlog(sim, server_id=7)
    event = log.append("UPDATE t SET a = 1", "app", 5.003)
    assert event.server_id == 7
    assert event.database == "app"
    assert event.commit_wallclock == 5.003
    assert event.commit_simtime == 5.0
    assert event.size_bytes > len(event.statement)


def test_read_from_cursor():
    sim = Simulator()
    log = Binlog(sim, server_id=1)
    for i in range(5):
        log.append(f"stmt{i}", "app", float(i))
    assert [e.statement for e in log.read_from(0)] == \
        ["stmt0", "stmt1", "stmt2", "stmt3", "stmt4"]
    assert [e.statement for e in log.read_from(3)] == ["stmt3", "stmt4"]
    assert log.read_from(5) == []
    assert [e.statement for e in log.read_from(0, max_events=2)] == \
        ["stmt0", "stmt1"]


def test_wait_for_fires_on_append():
    sim = Simulator()
    log = Binlog(sim, server_id=1)
    woke = []

    def dumper(sim, log):
        yield log.wait_for(0)
        woke.append(sim.now)

    def writer(sim, log):
        yield sim.timeout(3.0)
        log.append("stmt", "app", 3.0)

    sim.process(dumper(sim, log))
    sim.process(writer(sim, log))
    sim.run()
    assert woke == [3.0]


def test_wait_for_already_satisfied():
    sim = Simulator()
    log = Binlog(sim, server_id=1)
    log.append("stmt", "app", 0.0)
    woke = []

    def dumper(sim, log):
        yield log.wait_for(0)
        woke.append(sim.now)

    sim.process(dumper(sim, log))
    sim.run()
    assert woke == [0.0]

"""Storage-engine execution tests."""

import pytest

from repro.db import (DatabaseError, DuplicateKeyError, SchemaError,
                      StorageEngine, TableNotFoundError, TransactionError,
                      standard_functions)


@pytest.fixture
def engine():
    eng = StorageEngine(functions=standard_functions(lambda: 1000.123456),
                        default_database="app")
    eng.execute("CREATE TABLE users (id INTEGER PRIMARY KEY AUTO_INCREMENT, "
                "name VARCHAR(32) NOT NULL, karma INTEGER DEFAULT 0)")
    eng.execute("INSERT INTO users (name, karma) VALUES "
                "('alice', 5), ('bob', 3), ('carol', 9)")
    return eng


def rows(engine, sql, params=None):
    return engine.execute(sql, params=params).result.rows


# ----------------------------------------------------------------- SELECT
def test_select_all(engine):
    got = rows(engine, "SELECT * FROM users")
    assert got == [(1, "alice", 5), (2, "bob", 3), (3, "carol", 9)]


def test_select_columns_and_labels(engine):
    result = engine.execute("SELECT name, karma AS k FROM users "
                            "WHERE id = 1").result
    assert result.columns == ["name", "k"]
    assert result.rows == [("alice", 5)]


def test_select_pk_lookup_profile(engine):
    out = engine.execute("SELECT * FROM users WHERE id = 2")
    assert out.profile.used_index
    assert out.profile.rows_examined == 1


def test_select_missing_pk(engine):
    assert rows(engine, "SELECT * FROM users WHERE id = 99") == []


def test_select_full_scan_profile(engine):
    out = engine.execute("SELECT * FROM users WHERE karma > 4")
    assert not out.profile.used_index
    assert out.profile.rows_examined == 3
    assert out.profile.rows_returned == 2


def test_select_secondary_index_used(engine):
    engine.execute("CREATE INDEX idx_karma ON users (karma)")
    out = engine.execute("SELECT * FROM users WHERE karma = 3")
    assert out.profile.used_index
    assert out.profile.rows_examined == 1
    assert out.result.rows == [(2, "bob", 3)]


def test_select_index_range_scan(engine):
    engine.execute("CREATE INDEX idx_karma ON users (karma)")
    out = engine.execute("SELECT name FROM users WHERE karma BETWEEN 4 AND 10")
    assert out.profile.used_index
    assert sorted(out.result.rows) == [("alice",), ("carol",)]


def test_select_order_by(engine):
    got = rows(engine, "SELECT name FROM users ORDER BY karma DESC")
    assert got == [("carol",), ("alice",), ("bob",)]


def test_select_order_by_multi_key(engine):
    engine.execute("INSERT INTO users (name, karma) VALUES ('dave', 5)")
    got = rows(engine, "SELECT name FROM users ORDER BY karma DESC, name")
    assert got == [("carol",), ("alice",), ("dave",), ("bob",)]


def test_select_limit_offset(engine):
    got = rows(engine, "SELECT id FROM users ORDER BY id LIMIT 2 OFFSET 1")
    assert got == [(2,), (3,)]


def test_select_distinct(engine):
    engine.execute("INSERT INTO users (name, karma) VALUES ('dup', 5)")
    got = rows(engine, "SELECT DISTINCT karma FROM users ORDER BY karma")
    assert got == [(3,), (5,), (9,)]


def test_select_aggregates(engine):
    result = engine.execute(
        "SELECT COUNT(*), MAX(karma), MIN(karma), AVG(karma), SUM(karma) "
        "FROM users").result
    assert result.rows == [(3, 9, 3, 17 / 3, 17)]


def test_aggregate_over_empty_set(engine):
    result = engine.execute("SELECT COUNT(*), MAX(karma) FROM users "
                            "WHERE id > 100").result
    assert result.rows == [(0, None)]


def test_count_distinct(engine):
    engine.execute("INSERT INTO users (name, karma) VALUES ('dup', 5)")
    assert engine.execute("SELECT COUNT(DISTINCT karma) FROM users"
                          ).result.scalar() == 3


def test_mixed_aggregate_and_column_uses_mysql_semantics(engine):
    # Pre-ONLY_FULL_GROUP_BY MySQL: bare column evaluates on an
    # arbitrary row of the implicit single group.
    result = engine.execute("SELECT name, COUNT(*) FROM users").result
    assert result.rows[0][1] == 3
    assert result.rows[0][0] in ("alice", "bob", "carol")


def test_select_with_params(engine):
    got = rows(engine, "SELECT name FROM users WHERE karma > ?", params=(4,))
    assert sorted(got) == [("alice",), ("carol",)]


def test_tableless_select(engine):
    assert rows(engine, "SELECT 2 + 3") == [(5,)]
    assert engine.execute("SELECT USEC_NOW()").result.scalar() == \
        pytest.approx(1000.123456)


def test_select_unknown_table(engine):
    with pytest.raises(TableNotFoundError):
        engine.execute("SELECT * FROM nope")


# -------------------------------------------------------------------- JOIN
@pytest.fixture
def joined(engine):
    engine.execute("CREATE TABLE events (id INTEGER PRIMARY KEY "
                   "AUTO_INCREMENT, owner INTEGER, title VARCHAR(64))")
    engine.execute("INSERT INTO events (owner, title) VALUES "
                   "(1, 'party'), (2, 'meetup'), (1, 'demo')")
    return engine


def test_join_by_pk_probe(joined):
    out = joined.execute("SELECT e.title, u.name FROM events e "
                         "JOIN users u ON u.id = e.owner ORDER BY e.id")
    assert out.result.rows == [("party", "alice"), ("meetup", "bob"),
                               ("demo", "alice")]
    # pk probe: one right-row examined per left row
    assert out.profile.joined_tables == 1


def test_join_with_where(joined):
    got = rows(joined, "SELECT e.title FROM events e "
               "JOIN users u ON u.id = e.owner WHERE u.name = 'alice' "
               "ORDER BY e.id")
    assert got == [("party",), ("demo",)]


def test_join_star_projection(joined):
    result = joined.execute("SELECT * FROM events e "
                            "JOIN users u ON u.id = e.owner "
                            "WHERE e.id = 1").result
    assert result.columns == ["id", "owner", "title", "id", "name", "karma"]
    assert result.rows == [(1, 1, "party", 1, "alice", 5)]


def test_join_without_index_falls_back_to_scan(joined):
    # join on a non-indexed right column
    got = rows(joined, "SELECT u.name FROM users u "
               "JOIN events e ON e.title = 'party' WHERE u.id = 1")
    assert got == [("alice",)]


# --------------------------------------------------------------------- DML
def test_insert_lastrowid(engine):
    out = engine.execute("INSERT INTO users (name) VALUES ('dave')")
    assert out.result.lastrowid == 4
    assert out.result.rowcount == 1


def test_insert_all_columns_positional(engine):
    engine.execute("INSERT INTO users VALUES (50, 'eve', 1)")
    assert engine.execute("SELECT name FROM users WHERE id = 50"
                          ).result.scalar() == "eve"


def test_insert_wrong_arity(engine):
    with pytest.raises(SchemaError):
        engine.execute("INSERT INTO users (name) VALUES ('x', 2)")


def test_insert_duplicate_rolls_back_whole_statement(engine):
    with pytest.raises(DuplicateKeyError):
        engine.execute("INSERT INTO users (id, name) VALUES "
                       "(90, 'x'), (1, 'dup')")
    # first row of the failed statement must not remain
    assert rows(engine, "SELECT * FROM users WHERE id = 90") == []


def test_update_with_expression(engine):
    out = engine.execute("UPDATE users SET karma = karma * 2 WHERE karma > 4")
    assert out.result.rowcount == 2
    assert engine.execute("SELECT karma FROM users WHERE name = 'carol'"
                          ).result.scalar() == 18


def test_update_no_match(engine):
    out = engine.execute("UPDATE users SET karma = 0 WHERE id = 12345")
    assert out.result.rowcount == 0
    assert out.committed == []  # nothing binlogged


def test_delete(engine):
    out = engine.execute("DELETE FROM users WHERE karma < 4")
    assert out.result.rowcount == 1
    assert engine.execute("SELECT COUNT(*) FROM users").result.scalar() == 2


def test_delete_all(engine):
    engine.execute("DELETE FROM users")
    assert engine.execute("SELECT COUNT(*) FROM users").result.scalar() == 0


# --------------------------------------------------------------------- DDL
def test_create_database_and_qualified_tables(engine):
    engine.execute("CREATE DATABASE heartbeats")
    engine.execute("CREATE TABLE heartbeats.heartbeat "
                   "(id INTEGER PRIMARY KEY, ts DOUBLE)")
    engine.execute("INSERT INTO heartbeats.heartbeat VALUES (1, 0.5)")
    assert engine.execute("SELECT COUNT(*) FROM heartbeats.heartbeat"
                          ).result.scalar() == 1


def test_create_existing_database(engine):
    engine.execute("CREATE DATABASE d2")
    with pytest.raises(SchemaError):
        engine.execute("CREATE DATABASE d2")
    engine.execute("CREATE DATABASE IF NOT EXISTS d2")  # tolerated


def test_use_switches_default_database(engine):
    engine.execute("CREATE DATABASE d2")
    engine.execute("USE d2")
    engine.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
    assert "d2.t" in engine.tables
    with pytest.raises(DatabaseError):
        engine.execute("USE missing_db")


def test_create_table_if_not_exists(engine):
    engine.execute("CREATE TABLE IF NOT EXISTS users (id INTEGER PRIMARY KEY)")
    # original schema survives
    assert engine.table("users").schema.has_column("karma")
    with pytest.raises(SchemaError):
        engine.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")


def test_drop_table(engine):
    engine.execute("DROP TABLE users")
    assert not engine.has_table("users")
    with pytest.raises(TableNotFoundError):
        engine.execute("DROP TABLE users")
    engine.execute("DROP TABLE IF EXISTS users")  # tolerated


def test_create_table_in_unknown_database(engine):
    with pytest.raises(DatabaseError):
        engine.execute("CREATE TABLE nodb.t (a INTEGER PRIMARY KEY)")


# ------------------------------------------------------------ transactions
def test_commit_publishes_statements(engine):
    log = []
    engine.commit_listener = log.extend
    engine.execute("BEGIN")
    engine.execute("INSERT INTO users (name) VALUES ('x')")
    engine.execute("UPDATE users SET karma = 1 WHERE name = 'x'")
    assert log == []  # nothing until commit
    out = engine.execute("COMMIT")
    assert len(out.committed) == 2
    assert log == out.committed
    assert all(database == "app" for _text, database in log)


def test_rollback_restores_state(engine):
    before = engine.checksum()
    engine.execute("BEGIN")
    engine.execute("INSERT INTO users (name) VALUES ('x')")
    engine.execute("DELETE FROM users WHERE id = 1")
    engine.execute("UPDATE users SET karma = 99 WHERE id = 2")
    engine.execute("ROLLBACK")
    assert engine.checksum() == before


def test_autocommit_publishes_immediately(engine):
    log = []
    engine.commit_listener = log.extend
    engine.execute("INSERT INTO users (name) VALUES ('x')")
    assert len(log) == 1


def test_selects_never_binlogged(engine):
    log = []
    engine.commit_listener = log.extend
    engine.execute("SELECT * FROM users")
    assert log == []


def test_nested_begin_rejected(engine):
    engine.execute("BEGIN")
    with pytest.raises(TransactionError):
        engine.execute("BEGIN")


def test_commit_without_begin_rejected(engine):
    with pytest.raises(TransactionError):
        engine.execute("COMMIT")
    with pytest.raises(TransactionError):
        engine.execute("ROLLBACK")


def test_ddl_inside_transaction_rejected(engine):
    engine.execute("BEGIN")
    with pytest.raises(TransactionError):
        engine.execute("CREATE TABLE t2 (a INTEGER PRIMARY KEY)")


def test_rollback_of_pk_move(engine):
    before = engine.checksum()
    engine.execute("BEGIN")
    engine.execute("UPDATE users SET id = 77 WHERE id = 1")
    engine.execute("ROLLBACK")
    assert engine.checksum() == before


# ---------------------------------------------------------------- snapshot
def test_snapshot_restore_round_trip(engine):
    snapshot = engine.snapshot()
    engine.execute("DELETE FROM users")
    engine.execute("DROP TABLE users")
    other = StorageEngine(default_database="app")
    other.restore(snapshot)
    assert other.execute("SELECT COUNT(*) FROM users").result.scalar() == 3
    assert other.checksum() != engine.checksum()


def test_snapshot_databases_is_sorted_list(engine):
    # The snapshot is the slave initial-sync payload: it must
    # serialize identically across runs and hash seeds, so the
    # database names travel as a sorted list, never a raw set.
    engine.execute("CREATE DATABASE analytics")
    engine.execute("CREATE DATABASE audit")
    snapshot = engine.snapshot()
    assert isinstance(snapshot["databases"], list)
    assert snapshot["databases"] == sorted(snapshot["databases"])
    other = StorageEngine(default_database="app")
    other.restore(snapshot)
    assert other.snapshot()["databases"] == snapshot["databases"]


def test_snapshot_is_deep(engine):
    snapshot = engine.snapshot()
    engine.execute("UPDATE users SET karma = 1000 WHERE id = 1")
    other = StorageEngine(default_database="app")
    other.restore(snapshot)
    assert other.execute("SELECT karma FROM users WHERE id = 1"
                         ).result.scalar() == 5

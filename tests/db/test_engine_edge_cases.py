"""Storage-engine edge cases beyond the core behaviours."""

import pytest

from repro.db import StorageEngine, standard_functions


@pytest.fixture
def engine():
    eng = StorageEngine(functions=standard_functions(lambda: 0.0),
                        default_database="app")
    eng.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, "
                "name VARCHAR(16), score DOUBLE)")
    eng.execute("INSERT INTO t (name, score) VALUES "
                "('a', 1.0), ('b', NULL), ('c', 3.0), (NULL, 2.0)")
    return eng


def rows(engine, sql):
    return engine.execute(sql).result.rows


def test_order_by_puts_nulls_first(engine):
    got = rows(engine, "SELECT score FROM t ORDER BY score")
    assert got == [(None,), (1.0,), (2.0,), (3.0,)]


def test_order_by_desc_puts_nulls_last(engine):
    got = rows(engine, "SELECT score FROM t ORDER BY score DESC")
    assert got == [(3.0,), (2.0,), (1.0,), (None,)]


def test_order_by_mixed_types_is_total(engine):
    # numbers sort before text in our total order; must not raise.
    engine.execute("CREATE TABLE m (id INTEGER PRIMARY KEY, v TEXT)")
    engine.execute("INSERT INTO m VALUES (1, 'x'), (2, 'a')")
    got = rows(engine, "SELECT v FROM m ORDER BY v")
    assert got == [("a",), ("x",)]


def test_where_null_comparison_filters_row(engine):
    # NULL = NULL is NULL -> row filtered (SQL semantics).
    got = rows(engine, "SELECT id FROM t WHERE score = NULL")
    assert got == []


def test_is_null_predicates(engine):
    assert rows(engine, "SELECT id FROM t WHERE score IS NULL") == [(2,)]
    assert len(rows(engine, "SELECT id FROM t WHERE score IS NOT NULL")) \
        == 3


def test_limit_zero(engine):
    assert rows(engine, "SELECT * FROM t LIMIT 0") == []


def test_offset_beyond_rows(engine):
    assert rows(engine, "SELECT * FROM t LIMIT 10 OFFSET 100") == []


def test_distinct_counts_null_once(engine):
    engine.execute("INSERT INTO t (name, score) VALUES ('d', NULL)")
    got = rows(engine, "SELECT DISTINCT score FROM t ORDER BY score")
    assert got == [(None,), (1.0,), (2.0,), (3.0,)]


def test_aggregates_skip_nulls(engine):
    result = engine.execute(
        "SELECT COUNT(score), SUM(score), AVG(score) FROM t").result
    assert result.rows == [(3, 6.0, 2.0)]


def test_count_star_includes_nulls(engine):
    assert engine.execute("SELECT COUNT(*) FROM t").result.scalar() == 4


def test_params_in_dml(engine):
    engine.execute("INSERT INTO t (name, score) VALUES (?, ?)",
                   params=("e", 9.0))
    engine.execute("UPDATE t SET score = ? WHERE name = ?",
                   params=(10.0, "e"))
    assert engine.execute("SELECT score FROM t WHERE name = 'e'"
                          ).result.scalar() == 10.0
    engine.execute("DELETE FROM t WHERE name = ?", params=("e",))
    assert engine.execute("SELECT COUNT(*) FROM t WHERE name = 'e'"
                          ).result.scalar() == 0


def test_like_predicate_in_where(engine):
    got = rows(engine, "SELECT name FROM t WHERE name LIKE '_'")
    assert sorted(got) == [("a",), ("b",), ("c",)]


def test_in_list_in_where(engine):
    got = rows(engine, "SELECT id FROM t WHERE name IN ('a', 'c')")
    assert sorted(got) == [(1,), (3,)]


def test_arithmetic_projection(engine):
    got = rows(engine, "SELECT score * 2 + 1 FROM t WHERE id = 1")
    assert got == [(3.0,)]


def test_function_in_projection(engine):
    got = rows(engine, "SELECT UPPER(name) FROM t WHERE id = 1")
    assert got == [("A",)]


def test_resultset_helpers(engine):
    result = engine.execute("SELECT id, name FROM t WHERE id = 1").result
    assert result.scalar() == 1
    assert result.dicts() == [{"id": 1, "name": "a"}]
    empty = engine.execute("SELECT id FROM t WHERE id = 99").result
    assert empty.scalar() is None


def test_update_where_uses_residual_filter(engine):
    # Index probe on pk + residual predicate that rejects the row.
    out = engine.execute("UPDATE t SET score = 0 "
                         "WHERE id = 1 AND name = 'zzz'")
    assert out.result.rowcount == 0


def test_multi_conjunct_index_selection(engine):
    engine.execute("CREATE INDEX idx_name ON t (name)")
    out = engine.execute("SELECT * FROM t WHERE score IS NOT NULL "
                         "AND name = 'a'")
    assert out.profile.used_index
    assert out.profile.rows_examined == 1


def test_range_probe_reversed_operands(engine):
    engine.execute("CREATE INDEX idx_score ON t (score)")
    out = engine.execute("SELECT id FROM t WHERE 2.0 <= score")
    assert out.profile.used_index
    assert sorted(out.result.rows) == [(3,), (4,)]


def test_statements_executed_counter(engine):
    before = engine.statements_executed
    engine.execute("SELECT 1")
    assert engine.statements_executed == before + 1


def test_database_override_is_temporary(engine):
    engine.execute("CREATE DATABASE other")
    engine.execute("CREATE TABLE other.x (id INTEGER PRIMARY KEY)")
    engine.execute("INSERT INTO x VALUES (5)", database="other")
    assert engine.default_database == "app"
    assert engine.execute("SELECT COUNT(*) FROM other.x"
                          ).result.scalar() == 1


def test_unknown_function_in_where(engine):
    from repro.sql import EvaluationError
    with pytest.raises(EvaluationError):
        engine.execute("SELECT * FROM t WHERE mystery(id) = 1")


def test_insert_explicit_null_into_nullable(engine):
    engine.execute("INSERT INTO t (name, score) VALUES (NULL, NULL)")
    assert engine.execute(
        "SELECT COUNT(*) FROM t WHERE name IS NULL").result.scalar() == 2

"""Scalar-function registry tests."""

import pytest

from repro.db import standard_functions


@pytest.fixture
def fns():
    return standard_functions(lambda: 1234.5678912, rand=lambda: 0.25)


def test_now_has_second_resolution(fns):
    """MySQL's native NOW() truncates to seconds — the resolution the
    paper found too coarse for delay measurement."""
    assert fns["NOW"]() == 1234.0
    assert fns["CURRENT_TIMESTAMP"]() == 1234.0


def test_usec_now_has_microsecond_resolution(fns):
    """The bug-#8523 workaround UDF keeps microseconds."""
    assert fns["USEC_NOW"]() == pytest.approx(1234.567891)
    assert fns["USEC_NOW"]() != fns["NOW"]()


def test_unix_timestamp(fns):
    assert fns["UNIX_TIMESTAMP"]() == 1234
    assert fns["UNIX_TIMESTAMP"](99.9) == 99


def test_string_functions(fns):
    assert fns["LOWER"]("AbC") == "abc"
    assert fns["UPPER"]("AbC") == "ABC"
    assert fns["LENGTH"]("hello") == 5
    assert fns["CONCAT"]("a", 1, "b") == "a1b"
    assert fns["CONCAT"]("a", None) is None
    assert fns["SUBSTRING"]("hello", 2) == "ello"
    assert fns["SUBSTRING"]("hello", 2, 3) == "ell"


def test_null_passthrough(fns):
    for name in ("LOWER", "UPPER", "LENGTH", "ABS", "FLOOR"):
        assert fns[name](None) is None


def test_numeric_functions(fns):
    assert fns["ABS"](-3) == 3
    assert fns["ROUND"](2.567, 1) == 2.6
    assert fns["ROUND"](2.5678) == 3
    assert fns["FLOOR"](2.9) == 2
    assert fns["CEILING"](2.1) == 3
    assert fns["MOD"](7, 3) == 1
    assert fns["MOD"](7, 0) is None


def test_coalesce_ifnull(fns):
    assert fns["COALESCE"](None, None, 3) == 3
    assert fns["COALESCE"](None, None) is None
    assert fns["IFNULL"](None, "x") == "x"
    assert fns["IFNULL"](1, "x") == 1


def test_rand_uses_provided_generator(fns):
    assert fns["RAND"]() == 0.25


def test_rand_without_generator_raises():
    fns = standard_functions(lambda: 0.0)
    with pytest.raises(ValueError):
        fns["RAND"]()

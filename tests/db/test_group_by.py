"""GROUP BY / HAVING execution tests."""

import pytest

from repro.db import StorageEngine, standard_functions


@pytest.fixture
def engine():
    eng = StorageEngine(functions=standard_functions(lambda: 0.0),
                        default_database="app")
    eng.execute("CREATE TABLE sales (id INTEGER PRIMARY KEY "
                "AUTO_INCREMENT, region VARCHAR(8), product VARCHAR(8), "
                "amount INTEGER)")
    eng.execute("INSERT INTO sales (region, product, amount) VALUES "
                "('eu', 'a', 10), ('eu', 'b', 20), ('us', 'a', 30), "
                "('us', 'b', 40), ('us', 'a', 50), ('ap', 'c', 5)")
    return eng


def rows(engine, sql):
    return engine.execute(sql).result.rows


def test_group_by_count(engine):
    got = rows(engine, "SELECT region, COUNT(*) FROM sales "
               "GROUP BY region ORDER BY region")
    assert got == [("ap", 1), ("eu", 2), ("us", 3)]


def test_group_by_sum_avg(engine):
    got = rows(engine, "SELECT region, SUM(amount), AVG(amount) "
               "FROM sales GROUP BY region ORDER BY region")
    assert got == [("ap", 5, 5.0), ("eu", 30, 15.0), ("us", 120, 40.0)]


def test_group_by_multiple_keys(engine):
    got = rows(engine, "SELECT region, product, COUNT(*) FROM sales "
               "GROUP BY region, product ORDER BY region, product")
    assert ("us", "a", 2) in got
    assert len(got) == 5


def test_group_by_with_where(engine):
    got = rows(engine, "SELECT region, COUNT(*) FROM sales "
               "WHERE amount > 15 GROUP BY region ORDER BY region")
    assert got == [("eu", 1), ("us", 3)]


def test_having_filters_groups(engine):
    got = rows(engine, "SELECT region, COUNT(*) FROM sales "
               "GROUP BY region HAVING COUNT(*) >= 2 ORDER BY region")
    assert got == [("eu", 2), ("us", 3)]


def test_having_on_sum(engine):
    got = rows(engine, "SELECT region FROM sales GROUP BY region "
               "HAVING SUM(amount) > 100")
    assert got == [("us",)]


def test_order_by_aggregate(engine):
    got = rows(engine, "SELECT region FROM sales GROUP BY region "
               "ORDER BY SUM(amount) DESC")
    assert got == [("us",), ("eu",), ("ap",)]


def test_group_by_expression_key(engine):
    got = rows(engine, "SELECT amount % 20, COUNT(*) FROM sales "
               "GROUP BY amount % 20 ORDER BY amount % 20")
    assert got == [(0, 2), (5, 1), (10, 3)]


def test_aggregate_arithmetic_in_projection(engine):
    got = rows(engine, "SELECT region, SUM(amount) / COUNT(*) "
               "FROM sales GROUP BY region ORDER BY region")
    assert got == [("ap", 5.0), ("eu", 15.0), ("us", 40.0)]


def test_mysql_permissive_bare_column_with_aggregate(engine):
    # Pre-ONLY_FULL_GROUP_BY MySQL evaluates the bare column on an
    # arbitrary row of the (single) group.
    result = engine.execute("SELECT product, COUNT(*) FROM sales").result
    assert result.rows[0][1] == 6
    assert result.rows[0][0] in ("a", "b", "c")


def test_group_by_over_empty_set_yields_no_groups(engine):
    got = rows(engine, "SELECT region, COUNT(*) FROM sales "
               "WHERE amount > 999 GROUP BY region")
    assert got == []


def test_ungrouped_aggregate_over_empty_set_yields_one_row(engine):
    got = rows(engine, "SELECT COUNT(*), MAX(amount) FROM sales "
               "WHERE amount > 999")
    assert got == [(0, None)]


def test_having_without_group_by(engine):
    assert rows(engine, "SELECT COUNT(*) FROM sales "
                "HAVING COUNT(*) > 100") == []
    assert rows(engine, "SELECT COUNT(*) FROM sales "
                "HAVING COUNT(*) > 2") == [(6,)]


def test_group_by_limit_offset(engine):
    got = rows(engine, "SELECT region, COUNT(*) FROM sales "
               "GROUP BY region ORDER BY region LIMIT 1 OFFSET 1")
    assert got == [("eu", 2)]


def test_group_by_renders_and_round_trips(engine):
    from repro.sql import parse, render_statement
    sql = ("SELECT region, COUNT(*) FROM sales GROUP BY region "
           "HAVING (COUNT(*) >= 2) ORDER BY region")
    once = render_statement(parse(sql))
    assert render_statement(parse(once)) == once
    assert "GROUP BY" in once and "HAVING" in once


def test_group_by_count_distinct(engine):
    got = rows(engine, "SELECT region, COUNT(DISTINCT product) "
               "FROM sales GROUP BY region ORDER BY region")
    assert got == [("ap", 1), ("eu", 2), ("us", 2)]


def test_group_key_with_null(engine):
    engine.execute("INSERT INTO sales (region, product, amount) "
                   "VALUES (NULL, 'z', 1), (NULL, 'z', 2)")
    got = rows(engine, "SELECT region, COUNT(*) FROM sales "
               "GROUP BY region ORDER BY region")
    assert (None, 2) in got  # NULLs group together (MySQL semantics)
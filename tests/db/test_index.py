"""Index tests, including a property test against brute-force scans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import DuplicateKeyError, Index


def test_add_lookup_remove():
    index = Index("idx", ("a",))
    index.add({"a": 1, "b": "x"}, pk=10)
    index.add({"a": 1, "b": "y"}, pk=11)
    index.add({"a": 2, "b": "z"}, pk=12)
    assert index.lookup((1,)) == {10, 11}
    assert index.lookup((2,)) == {12}
    assert index.lookup((3,)) == frozenset()
    assert len(index) == 3
    index.remove({"a": 1, "b": "x"}, pk=10)
    assert index.lookup((1,)) == {11}


def test_remove_missing_raises():
    index = Index("idx", ("a",))
    with pytest.raises(KeyError):
        index.remove({"a": 1}, pk=99)


def test_unique_violation():
    index = Index("ux", ("a",), unique=True)
    index.add({"a": 1}, pk=10)
    with pytest.raises(DuplicateKeyError):
        index.add({"a": 1}, pk=11)


def test_unique_allows_reinsert_after_remove():
    index = Index("ux", ("a",), unique=True)
    index.add({"a": 1}, pk=10)
    index.remove({"a": 1}, pk=10)
    index.add({"a": 1}, pk=11)
    assert index.lookup((1,)) == {11}


def test_composite_key():
    index = Index("idx", ("a", "b"))
    index.add({"a": 1, "b": 2}, pk=10)
    assert index.lookup((1, 2)) == {10}
    assert index.lookup((1, 3)) == frozenset()


def test_range_scan_inclusive():
    index = Index("idx", ("a",))
    for pk, a in enumerate([5, 3, 8, 1, 9]):
        index.add({"a": a}, pk=pk)
    got = sorted(index.range_scan((3,), (8,)))
    assert got == [0, 1, 2]  # values 5, 3, 8


def test_range_scan_exclusive_bounds():
    index = Index("idx", ("a",))
    for pk, a in enumerate([1, 2, 3, 4]):
        index.add({"a": a}, pk=pk)
    got = sorted(index.range_scan((1,), (4,), include_low=False,
                                  include_high=False))
    assert got == [1, 2]


def test_range_scan_open_ended():
    index = Index("idx", ("a",))
    for pk, a in enumerate([1, 2, 3]):
        index.add({"a": a}, pk=pk)
    assert sorted(index.range_scan(low=(2,))) == [1, 2]
    assert sorted(index.range_scan(high=(2,))) == [0, 1]
    assert sorted(index.range_scan()) == [0, 1, 2]


def test_null_keys_indexed_but_not_in_ranges():
    index = Index("idx", ("a",))
    index.add({"a": None}, pk=1)
    index.add({"a": 5}, pk=2)
    assert index.lookup((None,)) == {1}
    assert list(index.range_scan()) == [2]
    index.remove({"a": None}, pk=1)
    assert index.lookup((None,)) == frozenset()


def test_rebuild():
    index = Index("idx", ("a",))
    index.add({"a": 1}, pk=1)
    index.rebuild([(10, {"a": 5}), (11, {"a": 6})])
    assert index.lookup((1,)) == frozenset()
    assert index.lookup((5,)) == {10}
    assert index.keys_in_order() == [(5,), (6,)]


@given(values=st.lists(
    st.tuples(st.integers(min_value=0, max_value=20),
              st.integers(min_value=-50, max_value=50)),
    min_size=0, max_size=80),
    low=st.integers(min_value=-50, max_value=50),
    span=st.integers(min_value=0, max_value=60))
@settings(max_examples=200, deadline=None)
def test_index_matches_brute_force(values, low, span):
    """Index lookups and range scans agree with a brute-force scan,
    after an interleaving of inserts and deletes."""
    index = Index("idx", ("a",))
    live = {}
    for pk, (action_selector, a) in enumerate(values):
        if action_selector % 4 == 0 and live:
            victim = next(iter(live))
            index.remove({"a": live.pop(victim)}, victim)
        else:
            index.add({"a": a}, pk)
            live[pk] = a
    high = low + span
    expected_range = {pk for pk, a in live.items() if low <= a <= high}
    assert set(index.range_scan((low,), (high,))) == expected_range
    for probe in sorted(set(live.values())):
        expected = {pk for pk, a in live.items() if a == probe}
        assert set(index.lookup((probe,))) == expected
    assert len(index) == len(live)

"""Projection corners: per-table star, labels, joins with aliases."""

import pytest

from repro.db import StorageEngine, standard_functions


@pytest.fixture
def engine():
    eng = StorageEngine(functions=standard_functions(lambda: 0.0),
                        default_database="app")
    eng.execute("CREATE TABLE users (id INTEGER PRIMARY KEY, "
                "name VARCHAR(16))")
    eng.execute("CREATE TABLE events (id INTEGER PRIMARY KEY, "
                "owner INTEGER, title VARCHAR(32))")
    eng.execute("INSERT INTO users VALUES (1, 'alice'), (2, 'bob')")
    eng.execute("INSERT INTO events VALUES (10, 1, 'party'), "
                "(11, 2, 'demo')")
    return eng


def test_per_table_star_in_join(engine):
    result = engine.execute(
        "SELECT e.*, u.name FROM events e "
        "JOIN users u ON u.id = e.owner ORDER BY e.id").result
    assert result.columns == ["id", "owner", "title", "name"]
    assert result.rows[0] == (10, 1, "party", "alice")


def test_star_for_one_side_only(engine):
    result = engine.execute(
        "SELECT u.* FROM events e JOIN users u ON u.id = e.owner "
        "WHERE e.id = 11").result
    assert result.columns == ["id", "name"]
    assert result.rows == [(2, "bob")]


def test_expression_labels(engine):
    result = engine.execute("SELECT id + 1, UPPER(name) FROM users "
                            "WHERE id = 1").result
    assert result.columns == ["(id + 1)", "UPPER(name)".lower()]


def test_alias_labels_win(engine):
    result = engine.execute("SELECT id + 1 AS next_id FROM users "
                            "WHERE id = 1").result
    assert result.columns == ["next_id"]


def test_self_join_with_distinct_aliases(engine):
    result = engine.execute(
        "SELECT a.name, b.name FROM users a "
        "JOIN users b ON b.id = a.id WHERE a.id = 1").result
    assert result.rows == [("alice", "alice")]


def test_join_chain_three_tables(engine):
    engine.execute("CREATE TABLE rsvp (id INTEGER PRIMARY KEY, "
                   "event_id INTEGER, user_id INTEGER)")
    engine.execute("INSERT INTO rsvp VALUES (1, 10, 2)")
    result = engine.execute(
        "SELECT u.name, e.title FROM rsvp r "
        "JOIN events e ON e.id = r.event_id "
        "JOIN users u ON u.id = r.user_id").result
    assert result.rows == [("bob", "party")]


def test_qualified_columns_resolve_in_single_table(engine):
    result = engine.execute(
        "SELECT users.name FROM users WHERE users.id = 2").result
    assert result.rows == [("bob",)]


def test_table_alias_changes_namespace(engine):
    result = engine.execute(
        "SELECT u.name FROM users u WHERE u.id = 1").result
    assert result.rows == [("alice",)]
    from repro.sql import EvaluationError
    with pytest.raises(EvaluationError):
        engine.execute("SELECT users.name FROM users u WHERE u.id = 1")

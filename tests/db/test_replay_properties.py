"""Property tests for the statement-replication invariant.

The whole replication design rests on one property: if a replica starts
from the same snapshot and re-executes the master's committed statement
texts in order, it converges to exactly the master's state.  These
tests drive random DML streams through a master engine and replay the
binlogged texts into a fresh replica.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import StorageEngine, standard_functions


def fresh_engine(clock=lambda: 0.0):
    engine = StorageEngine(functions=standard_functions(clock),
                           default_database="app")
    engine.execute("CREATE TABLE items (id INTEGER PRIMARY KEY "
                   "AUTO_INCREMENT, grp INTEGER, val INTEGER)")
    engine.execute("CREATE INDEX idx_grp ON items (grp)")
    return engine


class Op:
    """One random DML operation."""

    def __init__(self, kind, a, b):
        self.kind = kind
        self.a = a
        self.b = b

    def sql(self):
        if self.kind == 0:
            return (f"INSERT INTO items (grp, val) "
                    f"VALUES ({self.a % 5}, {self.b})")
        if self.kind == 1:
            return (f"UPDATE items SET val = val + {self.b % 7} "
                    f"WHERE grp = {self.a % 5}")
        if self.kind == 2:
            return f"DELETE FROM items WHERE id = {self.a % 30 + 1}"
        return (f"UPDATE items SET grp = {self.b % 5} "
                f"WHERE val < {self.a % 50}")


ops_strategy = st.lists(
    st.builds(Op,
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=100),
              st.integers(min_value=0, max_value=100)),
    min_size=0, max_size=40)


@given(ops=ops_strategy)
@settings(max_examples=150, deadline=None)
def test_replaying_binlog_reproduces_master_state(ops):
    master = fresh_engine()
    binlog: list[tuple[str, str]] = []
    master.commit_listener = binlog.extend
    snapshot = master.snapshot()
    for op in ops:
        master.execute(op.sql())
    replica = StorageEngine(functions=standard_functions(lambda: 0.0))
    replica.restore(snapshot)
    for text, database in binlog:
        replica.default_database = database
        replica.execute(text)
    assert replica.checksum() == master.checksum()


@given(ops=ops_strategy)
@settings(max_examples=100, deadline=None)
def test_replay_is_deterministic_across_replicas(ops):
    master = fresh_engine()
    binlog: list[tuple[str, str]] = []
    master.commit_listener = binlog.extend
    snapshot = master.snapshot()
    for op in ops:
        master.execute(op.sql())

    def build_replica():
        replica = StorageEngine(
            functions=standard_functions(lambda: 123.0))
        replica.restore(snapshot)
        for text, database in binlog:
            replica.default_database = database
            replica.execute(text)
        return replica.checksum()

    assert build_replica() == build_replica()


@given(ops=ops_strategy, boundary=st.integers(min_value=0, max_value=40))
@settings(max_examples=100, deadline=None)
def test_replay_prefix_then_suffix_equals_full_replay(ops, boundary):
    """Replication can pause and resume at any binlog position."""
    master = fresh_engine()
    binlog: list[tuple[str, str]] = []
    master.commit_listener = binlog.extend
    snapshot = master.snapshot()
    for op in ops:
        master.execute(op.sql())
    replica = StorageEngine(functions=standard_functions(lambda: 0.0))
    replica.restore(snapshot)
    cut = min(boundary, len(binlog))
    for text, database in binlog[:cut]:
        replica.default_database = database
        replica.execute(text)
    for text, database in binlog[cut:]:
        replica.default_database = database
        replica.execute(text)
    assert replica.checksum() == master.checksum()


@given(ops=ops_strategy)
@settings(max_examples=100, deadline=None)
def test_rollback_leaves_no_binlog_trace(ops):
    """Statements inside a rolled-back transaction never replicate."""
    master = fresh_engine()
    binlog: list[tuple[str, str]] = []
    master.commit_listener = binlog.extend
    master.execute("BEGIN")
    for op in ops:
        master.execute(op.sql())
    master.execute("ROLLBACK")
    assert binlog == []


def test_auto_increment_stays_aligned_after_deletes():
    """Deterministic auto-increment is required for statement-based
    replication of inserts after deletes."""
    master = fresh_engine()
    binlog: list[tuple[str, str]] = []
    master.commit_listener = binlog.extend
    snapshot = master.snapshot()
    master.execute("INSERT INTO items (grp, val) VALUES (1, 1)")
    master.execute("INSERT INTO items (grp, val) VALUES (1, 2)")
    master.execute("DELETE FROM items WHERE id = 2")
    master.execute("INSERT INTO items (grp, val) VALUES (1, 3)")
    replica = StorageEngine(functions=standard_functions(lambda: 0.0))
    replica.restore(snapshot)
    for text, database in binlog:
        replica.execute(text)
    assert replica.checksum() == master.checksum()

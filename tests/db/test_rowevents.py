"""Row-based replication event tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (DatabaseError, RowOp, StorageEngine, apply_row_ops,
                      row_ops_size_bytes, standard_functions)


def fresh_engine():
    engine = StorageEngine(functions=standard_functions(lambda: 5.0),
                           default_database="app")
    engine.execute("CREATE TABLE t (id INTEGER PRIMARY KEY "
                   "AUTO_INCREMENT, grp INTEGER, v INTEGER)")
    engine.execute("CREATE INDEX idx_grp ON t (grp)")
    return engine


def captured(engine):
    log = []
    engine.commit_listener = log.extend
    return log


def test_rowop_validation():
    with pytest.raises(DatabaseError):
        RowOp("upsert", "app.t", 1, {})
    with pytest.raises(DatabaseError):
        RowOp("insert", "app.t", 1, None)
    RowOp("delete", "app.t", 1)  # no row image needed


def test_insert_produces_row_image():
    engine = fresh_engine()
    engine.binlog_format = "row"
    log = captured(engine)
    engine.execute("INSERT INTO t (grp, v) VALUES (1, 10), (2, 20)")
    (ops, database), = log
    assert database == "app"
    assert [op.kind for op in ops] == ["insert", "insert"]
    assert ops[0].row == {"id": 1, "grp": 1, "v": 10}
    assert ops[1].pk == 2


def test_update_produces_new_image_with_old_pk():
    engine = fresh_engine()
    engine.execute("INSERT INTO t (grp, v) VALUES (1, 10)")
    engine.binlog_format = "row"
    log = captured(engine)
    engine.execute("UPDATE t SET v = v + 5, id = 9 WHERE id = 1")
    (ops, _db), = log
    op, = ops
    assert op.kind == "update"
    assert op.pk == 1                      # pre-image location
    assert op.row == {"id": 9, "grp": 1, "v": 15}


def test_delete_produces_tombstone():
    engine = fresh_engine()
    engine.execute("INSERT INTO t (grp, v) VALUES (1, 10)")
    engine.binlog_format = "row"
    log = captured(engine)
    engine.execute("DELETE FROM t WHERE id = 1")
    (ops, _db), = log
    assert ops == (RowOp("delete", "app.t", 1),)


def test_no_ops_for_no_op_statements():
    engine = fresh_engine()
    engine.binlog_format = "row"
    log = captured(engine)
    engine.execute("UPDATE t SET v = 0 WHERE id = 999")
    engine.execute("SELECT * FROM t")
    assert log == []


def test_rolled_back_transaction_emits_nothing():
    engine = fresh_engine()
    engine.binlog_format = "row"
    log = captured(engine)
    engine.execute("BEGIN")
    engine.execute("INSERT INTO t (grp, v) VALUES (1, 1)")
    engine.execute("ROLLBACK")
    assert log == []


def test_apply_row_ops_reproduces_state():
    master = fresh_engine()
    master.binlog_format = "row"
    log = captured(master)
    replica = fresh_engine()
    master.execute("INSERT INTO t (grp, v) VALUES (1, 10), (2, 20)")
    master.execute("UPDATE t SET v = v * 10 WHERE grp = 1")
    master.execute("DELETE FROM t WHERE id = 2")
    for ops, _db in log:
        apply_row_ops(replica, ops)
    assert replica.checksum() == master.checksum()


def test_apply_missing_table_raises():
    replica = StorageEngine(default_database="app")
    with pytest.raises(DatabaseError):
        apply_row_ops(replica, (RowOp("delete", "app.nope", 1),))


def test_nondeterministic_function_frozen_in_row_image():
    """The key semantic difference from statement-based replication:
    USEC_NOW() is evaluated once, on the master."""
    master = StorageEngine(functions=standard_functions(lambda: 111.5),
                           default_database="app")
    master.execute("CREATE TABLE hb (id INTEGER PRIMARY KEY, ts DOUBLE)")
    master.binlog_format = "row"
    log = captured(master)
    master.execute("INSERT INTO hb (id, ts) VALUES (1, USEC_NOW())")
    replica = StorageEngine(functions=standard_functions(lambda: 999.0),
                            default_database="app")
    replica.execute("CREATE TABLE hb (id INTEGER PRIMARY KEY, ts DOUBLE)")
    apply_row_ops(replica, log[0][0])
    assert replica.execute("SELECT ts FROM hb").result.scalar() == 111.5


def test_row_ops_size_grows_with_rows():
    small = (RowOp("insert", "app.t", 1, {"id": 1, "v": 2}),)
    large = small * 5
    assert row_ops_size_bytes(large) > row_ops_size_bytes(small)
    assert row_ops_size_bytes((RowOp("delete", "app.t", 1),)) > 0


@given(seed=st.integers(min_value=0, max_value=10**6),
       n_ops=st.integers(min_value=1, max_value=30))
@settings(max_examples=100, deadline=None)
def test_row_replication_matches_statement_replication(seed, n_ops):
    """Both binlog formats must converge replicas to the same state."""
    import numpy as np
    rng = np.random.default_rng(seed)
    statements = []
    for _ in range(n_ops):
        kind = int(rng.integers(0, 3))
        a, b = int(rng.integers(0, 50)), int(rng.integers(0, 50))
        if kind == 0:
            statements.append(
                f"INSERT INTO t (grp, v) VALUES ({a % 5}, {b})")
        elif kind == 1:
            statements.append(
                f"UPDATE t SET v = v + {b % 9} WHERE grp = {a % 5}")
        else:
            statements.append(f"DELETE FROM t WHERE id = {a % 20 + 1}")

    def run(fmt):
        master = fresh_engine()
        master.binlog_format = fmt
        log = captured(master)
        for sql in statements:
            master.execute(sql)
        replica = fresh_engine()
        for payload, _db in log:
            if isinstance(payload, str):
                replica.execute(payload)
            else:
                apply_row_ops(replica, payload)
        assert replica.checksum() == master.checksum()
        return master.checksum()

    assert run("statement") == run("row")

"""Table storage tests."""

import pytest

from repro.db import (DuplicateKeyError, SchemaError, Table, schema_from_ast)
from repro.sql.ast import ColumnDef, Literal


def make_table():
    schema = schema_from_ast("main.users", (
        ColumnDef("id", "INTEGER", None, primary_key=True,
                  auto_increment=True),
        ColumnDef("name", "VARCHAR", 20, nullable=False),
        ColumnDef("karma", "INTEGER", None, default=Literal(0)),
    ))
    return Table(schema)


def test_insert_auto_increment():
    table = make_table()
    assert table.insert({"name": "a"}) == 1
    assert table.insert({"name": "b"}) == 2
    assert len(table) == 2


def test_insert_explicit_pk_moves_watermark():
    table = make_table()
    table.insert({"id": 10, "name": "a"})
    assert table.insert({"name": "b"}) == 11


def test_duplicate_pk():
    table = make_table()
    table.insert({"id": 1, "name": "a"})
    with pytest.raises(DuplicateKeyError):
        table.insert({"id": 1, "name": "b"})


def test_null_pk_rejected():
    table = make_table()
    with pytest.raises(SchemaError):
        table.insert({"id": None, "name": "a"})


def test_update_returns_old_row():
    table = make_table()
    pk = table.insert({"name": "a", "karma": 1})
    old = table.update(pk, {"karma": 5})
    assert old["karma"] == 1
    assert table.get(pk)["karma"] == 5


def test_update_pk_move():
    table = make_table()
    table.insert({"id": 1, "name": "a"})
    table.update(1, {"id": 9})
    assert table.get(1) is None
    assert table.get(9)["name"] == "a"


def test_update_pk_collision():
    table = make_table()
    table.insert({"id": 1, "name": "a"})
    table.insert({"id": 2, "name": "b"})
    with pytest.raises(DuplicateKeyError):
        table.update(1, {"id": 2})


def test_update_not_null_enforced():
    table = make_table()
    pk = table.insert({"name": "a"})
    with pytest.raises(SchemaError):
        table.update(pk, {"name": None})


def test_delete_and_restore():
    table = make_table()
    pk = table.insert({"name": "a", "karma": 3})
    row = table.delete(pk)
    assert len(table) == 0
    table.restore(pk, row)
    assert table.get(pk)["karma"] == 3
    with pytest.raises(DuplicateKeyError):
        table.restore(pk, row)


def test_indexes_maintained_through_mutations():
    table = make_table()
    index = table.create_index("idx_karma", ("karma",))
    a = table.insert({"name": "a", "karma": 1})
    b = table.insert({"name": "b", "karma": 1})
    assert index.lookup((1,)) == {a, b}
    table.update(a, {"karma": 7})
    assert index.lookup((1,)) == {b}
    assert index.lookup((7,)) == {a}
    table.delete(b)
    assert index.lookup((1,)) == frozenset()


def test_create_index_backfills_existing_rows():
    table = make_table()
    pk = table.insert({"name": "a", "karma": 4})
    index = table.create_index("idx", ("karma",))
    assert index.lookup((4,)) == {pk}


def test_create_index_duplicate_name():
    table = make_table()
    table.create_index("idx", ("karma",))
    with pytest.raises(SchemaError):
        table.create_index("idx", ("name",))


def test_create_index_unknown_column():
    table = make_table()
    with pytest.raises(SchemaError):
        table.create_index("idx", ("missing",))


def test_index_on_leading_column():
    table = make_table()
    table.create_index("idx", ("karma", "name"))
    assert table.index_on("karma") is not None
    assert table.index_on("name") is None


def test_scan_order_is_insertion_order():
    table = make_table()
    table.insert({"id": 5, "name": "x"})
    table.insert({"id": 1, "name": "y"})
    assert [pk for pk, _row in table.scan()] == [5, 1]


def test_checksum_state_is_order_independent():
    t1, t2 = make_table(), make_table()
    t1.insert({"id": 1, "name": "a"})
    t1.insert({"id": 2, "name": "b"})
    t2.insert({"id": 2, "name": "b"})
    t2.insert({"id": 1, "name": "a"})
    assert t1.checksum_state() == t2.checksum_state()

"""Tests for SQL types and table schemas."""

import pytest

from repro.db import (ConstraintError, SchemaError,
                      resolve_type, schema_from_ast)
from repro.sql.ast import ColumnDef, Literal


def col(name, type_name="INTEGER", type_arg=None, **kwargs):
    return ColumnDef(name, type_name, type_arg, **kwargs)


# ------------------------------------------------------------------ types
def test_integer_coercion():
    t = resolve_type("INTEGER")
    assert t.coerce(5, "c") == 5
    assert t.coerce(5.0, "c") == 5
    assert t.coerce(True, "c") == 1
    assert t.coerce(None, "c") is None
    with pytest.raises(ConstraintError):
        t.coerce(5.5, "c")
    with pytest.raises(ConstraintError):
        t.coerce("x", "c")


def test_float_coercion():
    t = resolve_type("DOUBLE")
    assert t.coerce(5, "c") == 5.0
    assert isinstance(t.coerce(5, "c"), float)
    with pytest.raises(ConstraintError):
        t.coerce("x", "c")
    with pytest.raises(ConstraintError):
        t.coerce(True, "c")


def test_varchar_length_enforced():
    t = resolve_type("VARCHAR", 3)
    assert t.coerce("abc", "c") == "abc"
    with pytest.raises(ConstraintError):
        t.coerce("abcd", "c")


def test_varchar_requires_length():
    with pytest.raises(SchemaError):
        resolve_type("VARCHAR")


def test_text_unbounded():
    t = resolve_type("TEXT")
    assert t.coerce("x" * 100000, "c")


def test_boolean_coercion():
    t = resolve_type("BOOLEAN")
    assert t.coerce(1, "c") is True
    assert t.coerce(0, "c") is False
    with pytest.raises(ConstraintError):
        t.coerce("yes", "c")


def test_timestamp_is_float_seconds():
    t = resolve_type("TIMESTAMP")
    assert t.coerce(1234.567891, "c") == pytest.approx(1234.567891)


def test_unknown_type():
    with pytest.raises(SchemaError):
        resolve_type("BLOB")


def test_int_alias():
    assert resolve_type("INT").name == "INTEGER"


# ----------------------------------------------------------------- schema
def make_schema():
    return schema_from_ast("main.users", (
        col("id", primary_key=True, auto_increment=True),
        col("name", "VARCHAR", 10, nullable=False),
        col("karma", default=Literal(0)),
    ))


def test_schema_basics():
    schema = make_schema()
    assert schema.primary_key.name == "id"
    assert schema.column_names == ["id", "name", "karma"]
    assert schema.column("karma").has_default


def test_schema_requires_exactly_one_pk():
    with pytest.raises(SchemaError):
        schema_from_ast("t", (col("a"), col("b")))
    with pytest.raises(SchemaError):
        schema_from_ast("t", (col("a", primary_key=True),
                              col("b", primary_key=True)))


def test_schema_duplicate_column():
    with pytest.raises(SchemaError):
        schema_from_ast("t", (col("a", primary_key=True), col("a")))


def test_auto_increment_requires_int():
    with pytest.raises(SchemaError):
        schema_from_ast("t", (col("a", "TEXT", primary_key=True,
                                  auto_increment=True),))


def test_coerce_row_defaults_and_autoincrement():
    schema = make_schema()
    row = schema.coerce_row({"name": "bob"}, auto_increment_value=7)
    assert row == {"id": 7, "name": "bob", "karma": 0}


def test_coerce_row_not_null():
    schema = make_schema()
    with pytest.raises(ConstraintError):
        schema.coerce_row({"id": 1})  # name missing and NOT NULL
    with pytest.raises(ConstraintError):
        schema.coerce_row({"id": 1, "name": None})


def test_coerce_row_unknown_column():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.coerce_row({"id": 1, "name": "x", "bogus": 1})


def test_unknown_column_lookup():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.column("missing")
    assert schema.has_column("name")
    assert not schema.has_column("missing")

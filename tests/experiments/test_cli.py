"""CLI tests (fast subcommands run for real; grids use tiny cells)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_location_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig2", "--location", "moon"])


def test_fig4_command(capsys):
    assert main(["fig4", "--duration", "300"]) == 0
    out = capsys.readouterr().out
    assert "sync_once" in out
    assert "sync_every_second" in out


def test_rtt_command(capsys):
    assert main(["rtt", "--probes", "200"]) == 0
    out = capsys.readouterr().out
    assert "different_region" in out
    assert "(173)" in out


def test_variation_command(capsys):
    assert main(["variation", "--launches", "500"]) == 0
    assert "CoV" in capsys.readouterr().out


def test_cell_command(capsys):
    assert main(["cell", "--ratio", "50/50", "--slaves", "1",
                 "--users", "10", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "throughput:" in out
    assert "saturated resource:" in out


def test_cell_zero_slaves(capsys):
    assert main(["cell", "--slaves", "0", "--users", "5"]) == 0
    assert "n/a" in capsys.readouterr().out


def test_trace_command(tmp_path, capsys):
    """`repro trace` runs an observed cell and writes the artifacts."""
    import json
    out_dir = tmp_path / "traces"
    assert main(["trace", "--slaves", "1", "--users", "5",
                 "--out", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "spans recorded:" in out
    assert "kernel profile" in out
    doc = json.loads((out_dir / "trace.json").read_text())
    names = {event.get("name") for event in doc["traceEvents"]}
    assert {"driver.request", "repl.ship", "repl.apply"} <= names
    assert doc["kernelProfile"]["rows"]
    assert (out_dir / "spans.jsonl").exists()
    assert (out_dir / "metrics.jsonl").exists()
    assert (out_dir / "profile.txt").exists()


def test_report_command(tmp_path, monkeypatch):
    """End-to-end report run against a micro profile."""
    from repro.experiments.figures import ScaleProfile, _PROFILES
    micro = ScaleProfile("micro", time_factor=0.02, baseline_duration=10.0,
                         slaves_50_50=(1,), users_50_50=(10,),
                         slaves_80_20=(1,), users_80_20=(10,))
    monkeypatch.setitem(_PROFILES, "quick", micro)
    out_path = tmp_path / "run.md"
    assert main(["report", "--output", str(out_path)]) == 0
    text = out_path.read_text()
    assert text.startswith("# Reproduction run")
    assert "Figs. 2/5" in text and "Figs. 3/6" in text
    assert "Clock synchronization" in text
    assert "Half-RTT" in text
    assert "Instance variation" in text


def test_parser_defaults():
    args = build_parser().parse_args(["fig2"])
    assert args.ratio == "50/50"
    assert args.scale == "quick"
    assert args.location is None
    args = build_parser().parse_args(["cell"])
    assert args.slaves == 2 and args.users == 100

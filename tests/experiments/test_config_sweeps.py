"""Experiment config and saturation-detection tests."""

import pytest

from repro.experiments import (ExperimentConfig, LocationConfig,
                               PAPER_50_50, PAPER_80_20, SweepResult,
                               USERS_50_50, USERS_80_20, max_throughput,
                               saturation_point)
from repro.experiments.runner import ExperimentResult
from repro.workloads.cloudstone import MIX_50_50, Phases

PHASES = Phases(10, 20, 5)


def test_location_placements():
    same = LocationConfig.SAME_ZONE.slave_placement()
    other_zone = LocationConfig.DIFFERENT_ZONE.slave_placement()
    other_region = LocationConfig.DIFFERENT_REGION.slave_placement()
    assert same.zone == "us-east-1a"
    assert other_zone.zone == "us-east-1b"
    assert other_zone.region == "us-east-1"
    assert other_region.region == "eu-west-1"


def test_paper_factories_pin_data_sizes():
    a = PAPER_50_50(LocationConfig.SAME_ZONE, 1, 50, PHASES)
    b = PAPER_80_20(LocationConfig.SAME_ZONE, 1, 50, PHASES)
    assert a.data_size == 300 and a.mix.name == "50/50"
    assert b.data_size == 600 and b.mix.name == "80/20"


def test_paper_user_grids_match_figure_axes():
    assert USERS_50_50 == (50, 75, 100, 125, 150, 175, 200)
    assert USERS_80_20 == (50, 100, 150, 200, 250, 300, 350, 400, 450)


def test_config_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(LocationConfig.SAME_ZONE, MIX_50_50,
                         n_slaves=-1, n_users=10, data_size=10,
                         phases=PHASES)
    with pytest.raises(ValueError):
        ExperimentConfig(LocationConfig.SAME_ZONE, MIX_50_50,
                         n_slaves=1, n_users=0, data_size=10,
                         phases=PHASES)
    with pytest.raises(ValueError):
        ExperimentConfig(LocationConfig.SAME_ZONE, MIX_50_50,
                         n_slaves=1, n_users=10, data_size=0,
                         phases=PHASES)


def test_config_label():
    config = PAPER_50_50(LocationConfig.DIFFERENT_REGION, 3, 125, PHASES)
    assert "different_region" in config.label
    assert "slaves=3" in config.label


# ----------------------------------------------------- saturation detection
def fake_sweep(users, throughputs):
    sweep = SweepResult(LocationConfig.SAME_ZONE, "50/50", 1)
    for n_users, tput in zip(users, throughputs):
        config = PAPER_50_50(LocationConfig.SAME_ZONE, 1, n_users, PHASES)
        sweep.results.append(ExperimentResult(
            config=config, throughput=tput, achieved_read_fraction=0.5,
            mean_latency_s=0.1, master_cpu=0.5, slave_cpus=[0.5],
            relative_delay_ms=1.0))
    return sweep


def test_saturation_point_after_peak():
    sweep = fake_sweep((50, 75, 100, 125, 150),
                       (5.0, 8.0, 10.0, 9.5, 9.0))
    assert saturation_point(sweep) == 125
    assert max_throughput(sweep) == (100, 10.0)


def test_saturation_point_flat_tail():
    sweep = fake_sweep((50, 100, 150, 200), (5.0, 9.0, 9.9, 10.0))
    assert saturation_point(sweep) == 200  # flat: saturated at the end


def test_saturation_point_still_rising():
    sweep = fake_sweep((50, 100, 150), (5.0, 8.0, 11.0))
    assert saturation_point(sweep) is None

"""Rendering helpers: n/a delay cells, table layout, schedule text."""

from repro.experiments import (LocationConfig, PAPER_50_50,
                               render_delay_table,
                               render_saturation_schedule,
                               render_throughput_table)
from repro.experiments.runner import ExperimentResult
from repro.experiments.sweeps import SweepResult
from repro.workloads.cloudstone import Phases

PHASES = Phases(10, 20, 5)


def fake_sweep(n_slaves, cells):
    """cells: list of (users, tput, delay_or_None, master_cpu)."""
    sweep = SweepResult(LocationConfig.SAME_ZONE, "50/50", n_slaves)
    for users, tput, delay, master_cpu in cells:
        config = PAPER_50_50(LocationConfig.SAME_ZONE, n_slaves, users,
                             PHASES)
        sweep.results.append(ExperimentResult(
            config=config, throughput=tput, achieved_read_fraction=0.5,
            mean_latency_s=0.1, master_cpu=master_cpu,
            slave_cpus=[0.5] * n_slaves if n_slaves else [],
            relative_delay_ms=delay))
    return sweep


def test_throughput_table_layout():
    grids = [fake_sweep(1, [(50, 5.0, 1.0, 0.3), (100, 9.0, 2.0, 0.6)]),
             fake_sweep(2, [(50, 5.1, 1.0, 0.3), (100, 9.8, 1.5, 0.6)])]
    table = render_throughput_table(grids, "My title")
    lines = table.splitlines()
    assert lines[0] == "My title"
    assert "1-slave" in lines[1] and "2-slave" in lines[1]
    assert lines[2].strip().startswith("50")
    assert "9.8" in lines[3]


def test_delay_table_handles_none_and_floor():
    grids = [fake_sweep(0, [(50, 5.0, None, 0.3)]),
             fake_sweep(1, [(50, 5.0, -3.0, 0.3)])]
    table = render_delay_table(grids, "delays")
    assert "n/a" in table
    assert "0.0" in table  # negative clamp to the 0.01 floor


def test_saturation_schedule_lines():
    sweep = fake_sweep(3, [(50, 5.0, 1.0, 0.5), (100, 9.0, 1.0, 0.95),
                           (150, 9.1, 1.0, 0.99)])
    text = render_saturation_schedule([sweep])
    assert "master" in text
    assert "9.1@150" in text


def test_schedule_reports_none_when_rising():
    sweep = fake_sweep(1, [(50, 5.0, 1.0, 0.3), (100, 9.0, 1.0, 0.4)])
    text = render_saturation_schedule([sweep])
    assert "None" in text

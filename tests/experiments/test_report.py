"""Markdown report generator tests."""


from repro.experiments import (LocationConfig, PAPER_50_50,
                               run_fig4_clock_sync,
                               run_rtt_characterization, run_user_sweep)
from repro.experiments.report import (MarkdownReport, fig4_section,
                                      grid_section, rtt_section)
from repro.workloads.cloudstone import Phases

TINY = Phases(10.0, 30.0, 5.0)


def test_report_basic_blocks():
    report = MarkdownReport("Test run")
    report.add_heading("Section")
    report.add_paragraph("Some text.")
    report.add_table(["a", "b"], [["1", "2"], ["3", "4"]])
    text = report.render()
    assert text.startswith("# Test run")
    assert "## Section" in text
    assert "| a | b |" in text
    assert "| 3 | 4 |" in text


def test_report_save(tmp_path):
    report = MarkdownReport("Saved")
    report.add_paragraph("body")
    path = tmp_path / "report.md"
    report.save(path)
    assert path.read_text().startswith("# Saved")


def test_fig4_and_rtt_sections():
    report = MarkdownReport("Characterizations")
    fig4_section(report, run_fig4_clock_sync(duration=300.0))
    rtt_section(report, run_rtt_characterization(probes=200))
    text = report.render()
    assert "sync_once" in text
    assert "different_region" in text
    assert "28.23" in text  # paper reference line


def test_grid_section_renders_tables():
    sweep = run_user_sweep(PAPER_50_50, LocationConfig.SAME_ZONE,
                           n_slaves=1, users=(10, 25), phases=TINY,
                           seed=9, baseline_duration=10.0, data_size=50)
    report = MarkdownReport("Grid")
    grid_section(report, [sweep], "50/50 same zone")
    text = report.render()
    assert "## 50/50 same zone" in text
    assert "1-slave" in text
    assert "**Saturation**" in text
    assert "saturated resource" in text

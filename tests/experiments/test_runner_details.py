"""Runner detail tests: hardware validation, overrides, result helpers."""

import pytest

from repro.experiments import LocationConfig, PAPER_50_50, run_experiment
from repro.experiments.runner import ExperimentResult
from repro.workloads.cloudstone import Phases

TINY = Phases(10.0, 30.0, 5.0)


def run_cell(**overrides):
    config = PAPER_50_50(LocationConfig.SAME_ZONE, n_slaves=1, n_users=8,
                         phases=TINY, seed=12, baseline_duration=10.0,
                         data_size=40, **overrides)
    return config, run_experiment(config)


def test_validated_master_pins_nominal_hardware():
    # Seeds are per-run; find one where the raw lottery is slow.
    _config, result = run_cell(validated_master=True)
    # Can't see the instance from the result; assert via a fresh rig.
    from repro.cloud import Cloud, MASTER_PLACEMENT
    from repro.replication import ReplicationManager
    from repro.sim import RandomStreams, Simulator
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(12))
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    from repro.cloud.instance import CpuModel
    master.instance.pin_hardware(CpuModel("Intel Xeon E5430 2.66GHz", 1.0))
    assert master.instance.effective_speed == pytest.approx(1.0)


def test_unvalidated_master_keeps_lottery():
    """With validation off, two seeds can produce masters of different
    speed — and the throughput cap moves accordingly."""
    from repro.cloud import Cloud, MASTER_PLACEMENT
    from repro.replication import ReplicationManager
    from repro.sim import RandomStreams, Simulator

    def master_speed(seed):
        sim = Simulator()
        cloud = Cloud(sim, RandomStreams(seed))
        manager = ReplicationManager(sim, cloud, ntp_period=None)
        return manager.create_master(
            MASTER_PLACEMENT).instance.effective_speed

    speeds = {round(master_speed(seed), 3) for seed in range(12)}
    assert len(speeds) > 3  # the lottery varies


def test_think_time_override_changes_throughput():
    _c1, fast = run_cell(think_time_mean=1.0)
    _c2, slow = run_cell(think_time_mean=10.0)
    assert fast.throughput > slow.throughput


def test_pool_size_override():
    config, result = run_cell(pool_size=2)
    assert config.pool_size == 2
    assert result.throughput > 0.0


def test_heartbeat_interval_override():
    config, result = run_cell(heartbeat_interval=0.5)
    # Twice the heartbeats of the default in the steady window.
    assert result.heartbeat_counts[0] >= 40


def test_result_saturated_resource_classification():
    base = dict(config=None, throughput=1.0, achieved_read_fraction=0.5,
                mean_latency_s=0.1)
    assert ExperimentResult(**base, master_cpu=0.95, slave_cpus=[0.5],
                            relative_delay_ms=1.0
                            ).saturated_resource == "master"
    assert ExperimentResult(**base, master_cpu=0.5, slave_cpus=[0.95],
                            relative_delay_ms=1.0
                            ).saturated_resource == "slaves"
    assert ExperimentResult(**base, master_cpu=0.5, slave_cpus=[0.5],
                            relative_delay_ms=1.0
                            ).saturated_resource == "none"
    assert ExperimentResult(**base, master_cpu=0.5, slave_cpus=[],
                            relative_delay_ms=None
                            ).max_slave_cpu == 0.0

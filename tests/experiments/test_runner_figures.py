"""End-to-end experiment runner and figure-generator tests.

These run tiny, time-scaled cells — the full paper-scale grids live in
``benchmarks/``.
"""

import pytest

from repro.experiments import (LocationConfig, PAPER_50_50,
                               render_delay_table, render_fig4,
                               render_instance_variation, render_rtt_table,
                               render_saturation_schedule,
                               render_throughput_table, run_experiment,
                               run_fig4_clock_sync,
                               run_instance_variation,
                               run_rtt_characterization, run_user_sweep)
from repro.experiments.figures import bench_scale
from repro.workloads.cloudstone import Phases

TINY = Phases(ramp_up=15.0, steady=45.0, ramp_down=10.0)


@pytest.fixture(scope="module")
def small_cell():
    config = PAPER_50_50(LocationConfig.SAME_ZONE, n_slaves=2, n_users=30,
                         phases=TINY, seed=3, baseline_duration=15.0,
                         data_size=60)
    return run_experiment(config)


def test_runner_produces_sane_throughput(small_cell):
    assert small_cell.throughput > 1.0
    assert small_cell.mean_latency_s > 0.0


def test_runner_ratio_near_mix(small_cell):
    assert 0.35 < small_cell.achieved_read_fraction < 0.65


def test_runner_cpu_utilizations_in_range(small_cell):
    assert 0.0 < small_cell.master_cpu <= 1.0
    assert len(small_cell.slave_cpus) == 2
    assert all(0.0 < u <= 1.0 for u in small_cell.slave_cpus)
    assert small_cell.saturated_resource in ("none", "master", "slaves")


def test_runner_measures_relative_delay(small_cell):
    assert small_cell.relative_delay_ms is not None
    assert len(small_cell.per_slave_delay_ms) == 2
    # Light load in the master's zone: delay well under a second.
    assert small_cell.relative_delay_ms < 1000.0


def test_runner_row_renders(small_cell):
    row = small_cell.row()
    assert "30" in row  # user count appears


def test_zero_slave_cluster_supported():
    config = PAPER_50_50(LocationConfig.SAME_ZONE, n_slaves=0, n_users=10,
                         phases=TINY, seed=4, baseline_duration=10.0,
                         data_size=40)
    result = run_experiment(config)
    assert result.relative_delay_ms is None
    assert result.throughput > 0.5


def test_user_sweep_and_tables():
    sweep = run_user_sweep(PAPER_50_50, LocationConfig.SAME_ZONE,
                           n_slaves=1, users=(10, 30), phases=TINY,
                           seed=5, baseline_duration=10.0, data_size=60)
    assert sweep.users == [10, 30]
    assert sweep.throughputs[1] > sweep.throughputs[0]
    throughput_table = render_throughput_table([sweep], "test table")
    delay_table = render_delay_table([sweep], "test delays")
    schedule = render_saturation_schedule([sweep])
    assert "1-slave" in throughput_table
    assert "30" in throughput_table
    assert "n/a" not in delay_table
    assert "slaves" in schedule or "none" in schedule or "master" in schedule


# ---------------------------------------------------------- fig4/rtt/var
def test_fig4_reproduces_paper_statistics():
    series = run_fig4_clock_sync()
    once = series["sync_once"]
    every_second = series["sync_every_second"]
    import numpy as np
    # Paper: 7 -> 50 ms surge, median 28.23, std 12.31.
    assert once[0] < 12.0
    assert 45.0 < once[-1] < 56.0
    assert 24.0 < float(np.median(once)) < 33.0
    assert 10.0 < float(np.std(once)) < 15.0
    # Paper: 1-8 ms band, median 3.30, std 1.19.
    assert 1.0 < float(np.median(every_second)) < 8.0
    assert float(np.median(every_second)) < float(np.median(once))
    assert "sync_once" in render_fig4(series)


def test_rtt_characterization_matches_paper():
    half_rtts = run_rtt_characterization(probes=600)
    assert half_rtts["same_zone"] == pytest.approx(16.0, abs=2.0)
    assert half_rtts["different_zone"] == pytest.approx(21.0, abs=2.0)
    assert half_rtts["different_region"] == pytest.approx(173.0, abs=6.0)
    table = render_rtt_table(half_rtts)
    assert "(173)" in table


def test_instance_variation_cov():
    stats = run_instance_variation(launches=1500)
    assert 0.15 < stats["cov"] < 0.27
    assert "CoV" in render_instance_variation(stats)


def test_bench_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert bench_scale().name == "quick"
    monkeypatch.setenv("REPRO_SCALE", "standard")
    assert bench_scale().time_factor == 0.1
    monkeypatch.setenv("REPRO_SCALE", "full")
    assert bench_scale().users_80_20[-1] == 450
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        bench_scale()

"""Acceptance numbers for the quick Fig. 2 sweep (50/50, same zone).

The paper's §IV-A narrative, as asserted figures: the one-slave curve
leaves the linear-scaling line after ~100 users (its continuous
capacity-intersection knee sits below 150); with two or more slaves
the knee moves to ~175 users; and once enough slaves are attached the
master's write path — not the slaves — is the attributed bottleneck.
One quick-scale grid run (seed 0, ~25 s) feeds every assertion.
"""

import pytest

from repro.experiments import (LocationConfig, render_saturation_schedule,
                               run_throughput_delay_grid)
from repro.experiments.figures import _PROFILES
from repro.obs.analyze import detect_knee


@pytest.fixture(scope="module")
def fig2_grid():
    return run_throughput_delay_grid(
        "50/50", LocationConfig.SAME_ZONE, _PROFILES["quick"], seed=0)


def knee_for(grids, n_slaves):
    sweep = next(g for g in grids if g.n_slaves == n_slaves)
    return detect_knee(sweep.users, sweep.throughputs)


def test_one_slave_knee_near_100_users(fig2_grid):
    knee = knee_for(fig2_grid, 1)
    assert knee.saturated
    # The paper reads "the knee of the 1-slave curve is at about 100
    # users": 100 is the last grid point still on the linear line, and
    # the capacity intersection lands below the next grid point.
    assert knee.linear_limit_users == 100
    assert knee.knee_users <= 150.0


def test_multi_slave_knee_near_175_users(fig2_grid):
    for n_slaves in (2, 4):
        knee = knee_for(fig2_grid, n_slaves)
        assert knee.saturated
        # "with two or more slaves it moves to about 175 users".
        assert 160.0 <= knee.knee_users <= 190.0


def test_more_slaves_raise_capacity_until_master_wall(fig2_grid):
    capacities = {g.n_slaves: knee_for(fig2_grid, g.n_slaves).capacity
                  for g in fig2_grid}
    assert capacities[2] > capacities[1] * 1.2
    # The wall: the 4-slave curve buys ~nothing over 2 slaves.
    assert capacities[4] == pytest.approx(capacities[2], rel=0.05)


def test_bottleneck_attribution_matches_narrative(fig2_grid):
    by_slaves = {g.n_slaves: g for g in fig2_grid}
    # One slave, saturated: the slave CPU is the wall.
    assert by_slaves[1].results[-1].bottleneck == "slave-cpu"
    # Four slaves at 200 users: the master write path is the wall.
    heavy = by_slaves[4].results[-1]
    assert heavy.config.n_users == 200
    assert heavy.bottleneck == "master-cpu"
    assert heavy.diagnosis["evidence"]["master_util"] >= 0.90


def test_light_cells_have_no_bottleneck(fig2_grid):
    for sweep in fig2_grid:
        lightest = sweep.results[0]
        assert lightest.config.n_users == 50
        assert lightest.bottleneck == "none"


def test_saturation_schedule_renders_knees(fig2_grid):
    text = render_saturation_schedule(fig2_grid)
    assert "linear-limit" in text and "knee-users" in text
    assert "bottleneck" in text
    lines = text.splitlines()
    one_slave = next(line for line in lines[1:]
                     if line.strip().startswith("1"))
    assert "100" in one_slave
    assert "slave-cpu" in one_slave

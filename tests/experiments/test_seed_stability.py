"""Seed-stability regression: the same seed must reproduce the *full*
metrics digest byte for byte.

This is the property the whole reproduction stands on (and the one the
DET lint rules guard statically): replication delay is measured at
microsecond scale, so even a single stray hash-order iteration or
wall-clock read somewhere in the stack shows up here as a digest
mismatch.
"""

from repro.experiments import LocationConfig, PAPER_50_50, run_experiment
from repro.workloads.cloudstone import Phases

#: A miniature quick-scale cell — same structure as the paper's grid,
#: sized so two back-to-back runs stay test-suite friendly.
PHASES = Phases(ramp_up=15.0, steady=60.0, ramp_down=10.0)


def run_once(seed: int):
    config = PAPER_50_50(LocationConfig.DIFFERENT_ZONE, n_slaves=2,
                         n_users=25, phases=PHASES, seed=seed,
                         data_size=60, baseline_duration=20.0)
    return run_experiment(config)


def digest(result) -> bytes:
    """Every measured number, at full float precision (repr round-trips
    doubles exactly, so equal digests mean equal measurements)."""
    parts = [
        f"throughput={result.throughput!r}",
        f"read_fraction={result.achieved_read_fraction!r}",
        f"mean_latency={result.mean_latency_s!r}",
        f"master_cpu={result.master_cpu!r}",
        f"slave_cpus={[repr(u) for u in result.slave_cpus]}",
        f"relative_delay={result.relative_delay_ms!r}",
        f"delay_series={[repr(d) for d in result.per_slave_delay_ms]}",
        f"heartbeats={result.heartbeat_counts!r}",
        "percentiles={!r}".format(sorted(
            (repr(p), repr(v))
            for p, v in result.latency_percentiles_s.items())),
    ]
    return "\n".join(parts).encode("utf-8")


def test_same_seed_same_digest():
    first = digest(run_once(seed=7))
    second = digest(run_once(seed=7))
    assert first == second


def test_different_seed_different_digest():
    # Sanity check that the digest actually captures the measurements
    # (a constant digest would make the test above vacuous).
    assert digest(run_once(seed=7)) != digest(run_once(seed=8))

"""Seed-stability regression: the same seed must reproduce the *full*
metrics digest byte for byte.

This is the property the whole reproduction stands on (and the one the
DET lint rules guard statically): replication delay is measured at
microsecond scale, so even a single stray hash-order iteration or
wall-clock read somewhere in the stack shows up here as a digest
mismatch.
"""

from repro.experiments import LocationConfig, PAPER_50_50, run_experiment
from repro.workloads.cloudstone import Phases

#: A miniature quick-scale cell — same structure as the paper's grid,
#: sized so two back-to-back runs stay test-suite friendly.
PHASES = Phases(ramp_up=15.0, steady=60.0, ramp_down=10.0)


def run_once(seed: int, observe=None):
    config = PAPER_50_50(LocationConfig.DIFFERENT_ZONE, n_slaves=2,
                         n_users=25, phases=PHASES, seed=seed,
                         data_size=60, baseline_duration=20.0)
    return run_experiment(config, observe=observe)


def digest(result) -> bytes:
    """Every measured number, at full float precision (repr round-trips
    doubles exactly, so equal digests mean equal measurements)."""
    parts = [
        f"throughput={result.throughput!r}",
        f"read_fraction={result.achieved_read_fraction!r}",
        f"mean_latency={result.mean_latency_s!r}",
        f"master_cpu={result.master_cpu!r}",
        f"slave_cpus={[repr(u) for u in result.slave_cpus]}",
        f"relative_delay={result.relative_delay_ms!r}",
        f"delay_series={[repr(d) for d in result.per_slave_delay_ms]}",
        f"heartbeats={result.heartbeat_counts!r}",
        "percentiles={!r}".format(sorted(
            (repr(p), repr(v))
            for p, v in result.latency_percentiles_s.items())),
    ]
    return "\n".join(parts).encode("utf-8")


def test_same_seed_same_digest():
    first = digest(run_once(seed=7))
    second = digest(run_once(seed=7))
    assert first == second


def test_different_seed_different_digest():
    # Sanity check that the digest actually captures the measurements
    # (a constant digest would make the test above vacuous).
    assert digest(run_once(seed=7)) != digest(run_once(seed=8))


def run_observed(seed: int):
    """One observed run: (measurement digest, trace-artifact sha256)."""
    import hashlib

    from repro.obs import Observability, chrome_trace, spans_jsonl

    observe = Observability()
    result = run_once(seed=seed, observe=observe)
    blob = spans_jsonl(observe.tracer) + chrome_trace(
        observe.tracer, profiler=observe.profiler,
        metrics=observe.metrics)
    return (digest(result),
            hashlib.sha256(blob.encode("utf-8")).hexdigest())


def test_same_seed_byte_identical_trace():
    """The observability artifacts are part of the determinism
    contract: same seed -> same spans, same metrics, same profile,
    byte for byte — and recording them must not perturb the
    measurements themselves."""
    first_digest, first_trace = run_observed(seed=7)
    second_digest, second_trace = run_observed(seed=7)
    assert first_trace == second_trace
    assert first_digest == second_digest
    assert first_digest == digest(run_once(seed=7))

"""Alert-engine hysteresis: the edge cases that page people at 3am.

The engine is driven headless here — publish into a bare pipeline,
call ``evaluate`` at chosen sim times — so every state transition is
pinned to an exact time with no kernel in the way.
"""

from __future__ import annotations

from repro.obs.live.alerts import AlertEngine
from repro.obs.live.slo import AlertRule, SLOSpec
from repro.obs.live.streams import LivePipeline


def _engine(*rules, period_s=0.5):
    pipeline = LivePipeline()
    spec = SLOSpec(name="test", rules=tuple(rules),
                   period_s=period_s)
    return pipeline, AlertEngine(pipeline, spec)


def _threshold(name="lag", stream="s", threshold=10.0, for_s=2.0,
               clear=5.0, clear_for_s=3.0, **kw):
    return AlertRule(name=name, kind="threshold", stream=stream,
                     threshold=threshold, for_s=for_s, clear=clear,
                     clear_for_s=clear_for_s, **kw)


def test_fires_only_after_breach_held_for_duration():
    pipeline, engine = _engine(_threshold())
    pipeline.publish("s", 20.0, 0.0)
    engine.evaluate(0.0)          # pending starts here
    engine.evaluate(1.9)
    assert engine.active() == []
    engine.evaluate(2.0)          # held exactly for_s: fires
    assert engine.active() == [("lag", "s")]
    assert engine.fired == 1
    incident = engine.incidents[0]
    assert incident.fired_at_s == 2.0
    assert incident.open


def test_dip_below_clear_resets_the_pending_clock():
    pipeline, engine = _engine(_threshold())
    pipeline.publish("s", 20.0, 0.0)
    engine.evaluate(0.0)
    pipeline.publish("s", 1.0, 1.0)   # recovered before for_s
    engine.evaluate(1.0)
    pipeline.publish("s", 20.0, 1.5)  # breaches again
    engine.evaluate(1.5)
    engine.evaluate(3.0)              # only 1.5s into the NEW breach
    assert engine.active() == []
    engine.evaluate(3.5)
    assert engine.active() == [("lag", "s")]


def test_between_bounds_neither_fires_nor_resolves():
    pipeline, engine = _engine(_threshold())
    # Idle + value between clear (5) and threshold (10): stays idle.
    pipeline.publish("s", 7.0, 0.0)
    engine.evaluate(0.0)
    engine.evaluate(10.0)
    assert engine.active() == []
    # Now fire it, then park the value between the bounds: the alert
    # must hold (no resolve, no flapping).
    pipeline.publish("s", 20.0, 11.0)
    engine.evaluate(11.0)
    engine.evaluate(13.0)
    assert engine.active() == [("lag", "s")]
    pipeline.publish("s", 7.0, 14.0)
    for t in (14.0, 20.0, 30.0):
        engine.evaluate(t)
    assert engine.active() == [("lag", "s")]
    assert engine.resolved == 0


def test_rebreach_during_clearing_resets_the_resolve_clock():
    pipeline, engine = _engine(_threshold())
    pipeline.publish("s", 20.0, 0.0)
    engine.evaluate(0.0)
    engine.evaluate(2.0)              # firing
    pipeline.publish("s", 1.0, 10.0)
    engine.evaluate(10.0)             # clearing starts
    pipeline.publish("s", 20.0, 12.0)
    engine.evaluate(12.0)             # re-breach: clearing aborted
    pipeline.publish("s", 1.0, 13.0)
    engine.evaluate(13.0)             # clearing restarts here
    engine.evaluate(15.9)
    assert engine.active() == [("lag", "s")]
    engine.evaluate(16.0)             # held clear_for_s from 13.0
    assert engine.active() == []
    assert engine.resolved == 1
    incident = engine.incidents[0]
    assert incident.resolved_at_s == 16.0
    assert not incident.open
    assert incident.peak == 20.0


def test_absence_rule_arms_on_first_sample():
    rule = AlertRule(name="deadman", kind="absence",
                     stream="heartbeat.beat", threshold=3.0,
                     clear_for_s=2.0)
    pipeline, engine = _engine(rule)
    # Never published: not absent, however long we wait.
    engine.evaluate(100.0)
    assert engine.active() == []
    pipeline.publish("heartbeat.beat", 1.0, 100.0)
    engine.evaluate(102.0)            # silence 2.0 <= 3.0
    assert engine.active() == []
    engine.evaluate(103.5)            # silence 3.5 > 3.0: fires
    assert engine.active() == [("deadman", "heartbeat.beat")]
    # Beats resume; resolve after clear_for_s of fresh silence ≤ 3.
    pipeline.publish("heartbeat.beat", 2.0, 104.0)
    engine.evaluate(104.0)
    engine.evaluate(105.9)
    assert engine.active() == [("deadman", "heartbeat.beat")]
    pipeline.publish("heartbeat.beat", 3.0, 106.0)
    engine.evaluate(106.0)
    assert engine.active() == []


def test_burn_rate_needs_both_windows():
    rule = AlertRule(name="burn", kind="burn-rate", stream="s",
                     objective=1.0, threshold=0.5, fast_window_s=5.0,
                     slow_window_s=20.0)
    pipeline, engine = _engine(rule)
    # 20 seconds of healthy samples, then a 4-second violation burst:
    # fast window saturates, slow window stays diluted — no page.
    for tick in range(20):
        pipeline.publish("s", 0.0, float(tick))
        engine.evaluate(float(tick))
    for tick in range(4):
        t = 20.0 + tick
        pipeline.publish("s", 5.0, t)
        engine.evaluate(t)
    assert engine.active() == []
    # Keep violating until the slow window crosses too.
    for tick in range(16):
        t = 24.0 + tick
        pipeline.publish("s", 5.0, t)
        engine.evaluate(t)
    assert engine.active() == [("burn", "s")]


def test_wildcard_rule_keeps_independent_state_per_stream():
    pipeline, engine = _engine(
        _threshold(stream="slave.*.lag", for_s=0.0, clear_for_s=0.0))
    pipeline.publish("slave.a.lag", 20.0, 0.0)
    pipeline.publish("slave.b.lag", 1.0, 0.0)
    engine.evaluate(0.0)
    assert engine.active() == [("lag", "slave.a.lag")]
    pipeline.publish("slave.b.lag", 30.0, 1.0)
    pipeline.publish("slave.a.lag", 1.0, 1.0)
    engine.evaluate(1.0)
    assert engine.active() == [("lag", "slave.b.lag")]
    assert engine.fired == 2 and engine.resolved == 1


def test_smoothed_threshold_ignores_isolated_spikes():
    rule = _threshold(threshold=0.5, smooth_tau_s=5.0, for_s=0.0,
                      clear=0.3, clear_for_s=0.0)
    pipeline, engine = _engine(rule)
    # One isolated spike in a calm series: the EWMA stays under the
    # bound (0.1 + (1 - e^-0.2) * 1.9 ≈ 0.44 < 0.5).
    for tick in range(10):
        pipeline.publish("s", 0.1, float(tick))
        engine.evaluate(float(tick))
    pipeline.publish("s", 2.0, 10.0)
    pipeline.publish("s", 0.1, 10.1)
    engine.evaluate(10.1)
    assert engine.active() == []
    # A sustained shift does page.
    for tick in range(30):
        t = 11.0 + tick
        pipeline.publish("s", 0.9, t)
        engine.evaluate(t)
    assert engine.active() == [("lag", "s")]


def test_evidence_snapshot_excludes_internal_streams():
    rule = _threshold(for_s=0.0, evidence=("s", "aux.*", "_slo.*"))
    pipeline, engine = _engine(rule)
    pipeline.publish("aux.one", 1.5, 0.0)
    pipeline.publish("s", 20.0, 0.0)
    engine.evaluate(0.0)
    (incident,) = engine.incidents
    assert incident.evidence == {"aux.one": 1.5, "s": 20.0}
    assert not any(name.startswith("_slo.")
                   for name in incident.evidence)

"""Incident documents (byte-determinism) and detection scoring."""

from __future__ import annotations

import json
from types import SimpleNamespace

from repro.obs.live.alerts import AlertEngine, Incident
from repro.obs.live.incidents import (incidents_document,
                                      render_incidents_text,
                                      write_incidents)
from repro.obs.live.score import score_detection
from repro.obs.live.slo import AlertRule, SLOSpec
from repro.obs.live.streams import LivePipeline


def _driven_engine():
    """A small deterministic scenario: one fire, one resolve."""
    spec = SLOSpec(name="mini", rules=(
        AlertRule(name="lag", kind="threshold", stream="s",
                  threshold=10.0, for_s=1.0, clear=5.0,
                  clear_for_s=1.0, evidence=("s",)),))
    pipeline = LivePipeline()
    engine = AlertEngine(pipeline, spec)
    tape = ((0.0, 20.0), (1.0, 25.0), (2.0, 25.0), (3.0, 1.0),
            (4.0, 1.0), (5.0, 1.0))
    for t, value in tape:
        pipeline.publish("s", value, t)
        engine.evaluate(t)
    return engine


def test_incidents_document_is_byte_deterministic(tmp_path):
    documents, paths = [], []
    for index in range(2):
        document = incidents_document(_driven_engine(), 5.0)
        path = tmp_path / f"incidents-{index}.json"
        write_incidents(document, path)
        documents.append(document)
        paths.append(path)
    assert documents[0] == documents[1]
    assert documents[0]["digest"] == documents[1]["digest"]
    assert paths[0].read_bytes() == paths[1].read_bytes()
    # The digest covers the content: reload and recheck shape.
    loaded = json.loads(paths[0].read_text())
    assert loaded["fired"] == 1 and loaded["resolved"] == 1
    (incident,) = loaded["incidents"]
    assert incident["rule"] == "lag"
    assert incident["fired_at_s"] == 1.0
    assert incident["resolved_at_s"] == 4.0
    assert incident["peak"] == 25.0
    # Evidence is snapshotted at fire time (t=1.0, after s=25.0).
    assert incident["evidence"] == {"s": 25.0}


def test_render_includes_timeline_scorecard_and_digest():
    engine = _driven_engine()
    detection = score_detection(
        engine.incidents,
        [SimpleNamespace(at=0.5, kind="slave-slow", target="s",
                         duration=2.0),
         SimpleNamespace(at=0.0, kind="latency", target="l",
                         duration=1.0)],
        fault_alerts={"slave-slow": ("lag",), "latency": ()})
    document = incidents_document(
        engine, 5.0, bottleneck={"verdict": "slave-cpu"},
        detection=detection)
    text = render_incidents_text(document)
    assert "#1" in text and "[page]" in text and "lag" in text
    assert "detected in 0.500s by lag" in text
    assert "unmapped" in text
    assert "bottleneck verdict (obs/analyze): slave-cpu" in text
    assert document["digest"] in text


def _incident(rule, stream, fired, resolved=None):
    return Incident(incident_id=1, rule=rule, stream=stream,
                    severity="page", fired_at_s=fired,
                    resolved_at_s=resolved)


def _fault(kind, at, target="slave-1", duration=10.0):
    return SimpleNamespace(kind=kind, at=at, target=target,
                           duration=duration)


def test_score_picks_first_matching_fire_inside_the_window():
    incidents = [_incident("staleness", "slave.slave-1.lag", 35.0),
                 _incident("staleness", "slave.slave-1.lag", 90.0)]
    result = score_detection(incidents, [_fault("slave-slow", 30.0)],
                             tolerance_s=30.0)
    (row,) = result["faults"]
    assert row["detected"] and row["time_to_detect_s"] == 5.0
    assert result["per_kind"]["slave-slow"]["max_ttd_s"] == 5.0


def test_score_requires_matching_target_for_slave_faults():
    incidents = [_incident("staleness", "slave.slave-2.lag", 35.0)]
    result = score_detection(incidents, [_fault("slave-slow", 30.0)],
                             tolerance_s=30.0)
    assert result["detected"] == 0 and result["missed"] == 1


def test_score_counts_already_firing_as_zero_ttd():
    incidents = [_incident("staleness", "slave.slave-1.lag", 10.0)]
    result = score_detection(incidents, [_fault("slave-slow", 30.0)],
                             tolerance_s=30.0)
    (row,) = result["faults"]
    assert row["detected"] and row["time_to_detect_s"] == 0.0
    # ...but not if it resolved before the fault landed.
    resolved = [_incident("staleness", "slave.slave-1.lag", 10.0,
                          resolved=20.0)]
    result = score_detection(resolved, [_fault("slave-slow", 30.0)],
                             tolerance_s=30.0)
    assert result["detected"] == 0


def test_score_window_is_duration_plus_tolerance():
    # Fault at 30 for 10s, tolerance 5: window closes at 45.
    late = [_incident("staleness", "slave.slave-1.lag", 45.5)]
    result = score_detection(late, [_fault("slave-slow", 30.0)],
                             tolerance_s=5.0)
    assert result["detected"] == 0
    on_time = [_incident("staleness", "slave.slave-1.lag", 45.0)]
    result = score_detection(on_time, [_fault("slave-slow", 30.0)],
                             tolerance_s=5.0)
    assert result["detected"] == 1


def test_score_offset_shifts_fault_times():
    incidents = [_incident("master-unavailable", "heartbeat.beat",
                           65.0)]
    result = score_detection(incidents,
                             [_fault("master-crash", 30.0,
                                     target=None)],
                             offset=30.0, tolerance_s=30.0)
    (row,) = result["faults"]
    assert row["at_s"] == 60.0
    assert row["detected"] and row["time_to_detect_s"] == 5.0


def test_unmapped_kinds_are_unscored():
    result = score_detection([], [_fault("latency", 10.0)],
                             tolerance_s=30.0)
    assert result["scored"] == 0 and result["unscored"] == 1

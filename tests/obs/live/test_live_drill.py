"""End-to-end wiring: the live plane attached to real runs.

A reduced drill (short phases, two faults) keeps these fast while
still exercising the full path: monitor → pipeline → engine →
incidents → detection scorecard, plus the watchboard on a plain
experiment cell.
"""

from __future__ import annotations

import json

from repro.chaos.drill import DrillConfig, run_drill
from repro.chaos.faults import Fault, FaultSchedule
from repro.experiments.config import PAPER_50_50, LocationConfig
from repro.experiments.runner import run_experiment
from repro.obs import Observability
from repro.obs.live import (LiveSession, default_slo_spec,
                            write_incidents)
from repro.workloads.cloudstone import Phases


def _mini_config(seed=7):
    return DrillConfig(
        seed=seed, n_users=8, n_slaves=2, data_size=80,
        baseline_duration=10.0,
        phases=Phases(ramp_up=5.0, steady=60.0, ramp_down=5.0),
        schedule=FaultSchedule([
            Fault(at=10.0, kind="slave-slow", target="slave-1",
                  duration=20.0, severity=0.1),
            Fault(at=50.0, kind="master-crash"),
        ]),
        drain_timeout=30.0)


def _run_mini(seed=7):
    return run_drill(_mini_config(seed),
                     observe=Observability(monitor_period=None),
                     slo=LiveSession(default_slo_spec()))


def test_drill_with_slo_scores_detection_and_reports(tmp_path):
    result = _run_mini()
    incidents = result.incidents
    assert incidents is not None
    detection = incidents["detection"]
    assert detection["scored"] == 2
    # Both mapped faults must be detected with bounded latency.
    for row in detection["faults"]:
        assert row["detected"], f"missed {row['kind']}"
        assert row["time_to_detect_s"] <= 30.0
    crash_row = next(row for row in detection["faults"]
                     if row["kind"] == "master-crash")
    assert crash_row["matched_rule"] == "master-unavailable"
    # The drill report carries the SLO section, inside the digest.
    slo_section = result.report["slo"]
    assert slo_section["incidentsDigest"] == incidents["digest"]
    assert slo_section["detected"] == detection["detected"]
    assert slo_section["spec"]["digest"] == \
        default_slo_spec().digest()
    # The document round-trips byte-stably through the writer.
    path = tmp_path / "incidents.json"
    write_incidents(incidents, path)
    assert json.loads(path.read_text()) == incidents


def test_drill_with_slo_is_deterministic():
    first, second = _run_mini(), _run_mini()
    assert first.incidents == second.incidents
    assert first.report == second.report


def test_drill_without_slo_has_no_slo_section():
    result = run_drill(_mini_config(),
                       observe=Observability(monitor_period=None))
    assert "slo" not in result.report
    assert result.incidents is None


def test_experiment_cell_watchboard_is_deterministic():
    def run():
        config = PAPER_50_50(
            LocationConfig.SAME_ZONE, 1, 10,
            Phases().scaled(0.02), seed=0, baseline_duration=5.0)
        session = LiveSession(default_slo_spec(),
                              watch_interval=15.0)
        return run_experiment(config, slo=session)

    first, second = run(), run()
    assert first.watch_text and first.watch_text == second.watch_text
    assert "── watch" in first.watch_text
    assert first.incidents == second.incidents
    # A healthy same-zone cell must not page.
    pages = [incident for incident in first.incidents["incidents"]
             if incident["severity"] == "page"]
    assert pages == []

"""SLO spec round-trips, validation, and digest stability."""

from __future__ import annotations

import json

import pytest

from repro.obs.live.slo import (AlertRule, SLOSpec, default_slo_spec,
                                load_slo_file)


def test_default_spec_round_trips_through_dict():
    spec = default_slo_spec()
    clone = SLOSpec.from_dict(spec.as_dict())
    assert clone == spec
    assert clone.digest() == spec.digest()


def test_digest_is_stable_and_content_sensitive():
    spec = default_slo_spec()
    assert spec.digest() == default_slo_spec().digest()
    retuned = SLOSpec.from_dict(spec.as_dict())
    record = retuned.as_dict()
    record["rules"][0]["threshold"] = 99.0
    assert SLOSpec.from_dict(record).digest() != spec.digest()


def test_load_slo_file(tmp_path):
    path = tmp_path / "policy.json"
    path.write_text(json.dumps(default_slo_spec().as_dict()))
    assert load_slo_file(path) == default_slo_spec()


def test_rule_validation_rejects_bad_fields():
    with pytest.raises(ValueError, match="kind"):
        AlertRule(name="r", kind="nope", stream="s", threshold=1.0)
    with pytest.raises(ValueError, match="comparison"):
        AlertRule(name="r", kind="threshold", stream="s",
                  threshold=1.0, comparison="ge")
    with pytest.raises(ValueError, match="severity"):
        AlertRule(name="r", kind="threshold", stream="s",
                  threshold=1.0, severity="meh")
    with pytest.raises(ValueError, match="needs a name"):
        AlertRule(name="", kind="threshold", stream="s",
                  threshold=1.0)
    with pytest.raises(ValueError, match="durations"):
        AlertRule(name="r", kind="threshold", stream="s",
                  threshold=1.0, for_s=-1.0)


def test_burn_rate_validation():
    with pytest.raises(ValueError, match="objective"):
        AlertRule(name="r", kind="burn-rate", stream="s",
                  threshold=0.5)
    with pytest.raises(ValueError, match="fraction"):
        AlertRule(name="r", kind="burn-rate", stream="s",
                  threshold=1.5, objective=1.0)
    with pytest.raises(ValueError, match="fast <= slow"):
        AlertRule(name="r", kind="burn-rate", stream="s",
                  threshold=0.5, objective=1.0, fast_window_s=60.0,
                  slow_window_s=5.0)


def test_absence_and_smoothing_validation():
    with pytest.raises(ValueError, match="absence"):
        AlertRule(name="r", kind="absence", stream="s",
                  threshold=0.0)
    with pytest.raises(ValueError, match="threshold rules only"):
        AlertRule(name="r", kind="absence", stream="s",
                  threshold=1.0, smooth_tau_s=5.0)
    with pytest.raises(ValueError, match="smooth_tau_s"):
        AlertRule(name="r", kind="threshold", stream="s",
                  threshold=1.0, smooth_tau_s=-2.0)


def test_spec_validation():
    rule = AlertRule(name="r", kind="threshold", stream="s",
                     threshold=1.0)
    with pytest.raises(ValueError, match="duplicate"):
        SLOSpec(name="spec", rules=(rule, rule))
    with pytest.raises(ValueError, match="period_s"):
        SLOSpec(name="spec", rules=(rule,), period_s=0.0)
    with pytest.raises(ValueError, match="unknown fields"):
        SLOSpec.from_dict({"name": "spec", "rules": [],
                           "surprise": 1})
    with pytest.raises(ValueError, match="unknown fields"):
        AlertRule.from_dict({"name": "r", "kind": "threshold",
                             "stream": "s", "threshold": 1.0,
                             "surprise": 1})

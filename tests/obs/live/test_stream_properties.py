"""Property-based tests on the streaming operators.

Every incremental operator is checked against a brute-force recompute
over the full sample tape: whatever clever state the operator keeps
(monotonic deques, histogram rings, running EWMAs), reading it at any
sim time must agree with "keep everything, filter, aggregate".
"""

from __future__ import annotations

import bisect
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.live.streams import (Ewma, LivePipeline, SlidingMax,
                                    SlidingMin, SlidingQuantile,
                                    WindowedMean, WindowedRate)

#: (dt, value) pairs; times accumulate so tapes are monotonic, as sim
#: time is.
_TAPE = st.lists(
    st.tuples(
        st.floats(min_value=1e-3, max_value=5.0, allow_nan=False,
                  allow_infinity=False),
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                  allow_infinity=False)),
    min_size=1, max_size=60)
_WINDOW = st.floats(min_value=0.5, max_value=20.0, allow_nan=False)
#: Extra sim time between the last sample and the read.
_ADVANCE = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)


def _accumulate(tape):
    """[(dt, value)] -> [(t, value)] with monotonic t."""
    t = 0.0
    out = []
    for dt, value in tape:
        t += dt
        out.append((t, value))
    return out


def _in_window(points, now, window):
    """Window membership is strict: ``t > now - window``."""
    return [(t, v) for t, v in points if t > now - window]


@given(tape=_TAPE, window=_WINDOW, advance=_ADVANCE)
@settings(max_examples=200, deadline=None)
def test_windowed_rate_count_matches_bruteforce(tape, window, advance):
    op = WindowedRate(window)
    points = _accumulate(tape)
    for t, value in points:
        op.update(t, value)
    now = points[-1][0] + advance
    expected = len(_in_window(points, now, window)) / window
    assert math.isclose(op.read(now), expected, rel_tol=1e-9,
                        abs_tol=1e-12)


@given(tape=_TAPE, window=_WINDOW, advance=_ADVANCE)
@settings(max_examples=200, deadline=None)
def test_windowed_rate_delta_matches_bruteforce(tape, window, advance):
    op = WindowedRate(window, mode="delta")
    points = _accumulate(tape)
    # Delta mode differences a cumulative counter: replay the same
    # differencing brute-force (first sample carries weight 0).
    weights = []
    previous = None
    for t, value in points:
        weights.append((t, value - previous
                        if previous is not None else 0.0))
        previous = value
        op.update(t, value)
    now = points[-1][0] + advance
    expected = math.fsum(
        w for t, w in weights if t > now - window) / window
    assert math.isclose(op.read(now), expected, rel_tol=1e-9,
                        abs_tol=1e-12)


@given(tape=_TAPE, window=_WINDOW, advance=_ADVANCE)
@settings(max_examples=200, deadline=None)
def test_windowed_mean_matches_bruteforce(tape, window, advance):
    op = WindowedMean(window)
    points = _accumulate(tape)
    for t, value in points:
        op.update(t, value)
    now = points[-1][0] + advance
    live = _in_window(points, now, window)
    got = op.read(now)
    if not live:
        assert got is None
    else:
        expected = math.fsum(v for _t, v in live) / len(live)
        assert math.isclose(got, expected, rel_tol=1e-9,
                            abs_tol=1e-12)


@given(tape=_TAPE, window=_WINDOW, advance=_ADVANCE)
@settings(max_examples=200, deadline=None)
def test_sliding_extremes_match_bruteforce(tape, window, advance):
    op_max, op_min = SlidingMax(window), SlidingMin(window)
    points = _accumulate(tape)
    for t, value in points:
        op_max.update(t, value)
        op_min.update(t, value)
    now = points[-1][0] + advance
    live = _in_window(points, now, window)
    if not live:
        assert op_max.read(now) is None
        assert op_min.read(now) is None
    else:
        assert op_max.read(now) == max(v for _t, v in live)
        assert op_min.read(now) == min(v for _t, v in live)


@given(tape=_TAPE,
       tau=st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_ewma_matches_bruteforce_recursion(tape, tau):
    op = Ewma(tau)
    points = _accumulate(tape)
    expected = None
    last_t = None
    for t, value in points:
        op.update(t, value)
        if expected is None:
            expected = value
        else:
            alpha = 1.0 - math.exp(-max(t - last_t, 0.0) / tau)
            expected += alpha * (value - expected)
        last_t = t
    assert math.isclose(op.read(points[-1][0]), expected,
                        rel_tol=1e-9, abs_tol=1e-12)


@given(tape=st.lists(
           st.tuples(
               st.floats(min_value=1e-3, max_value=5.0,
                         allow_nan=False),
               st.floats(min_value=0.0, max_value=90.0,
                         allow_nan=False)),
           min_size=1, max_size=60),
       window=_WINDOW, advance=_ADVANCE,
       q=st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_sliding_quantile_matches_flat_histogram(tape, window,
                                                 advance, q):
    """The ring of per-sub-window histograms must read exactly like a
    flat recompute: bucketize every retained sample, walk cumulative
    counts to the requested rank."""
    slots = 16
    op = SlidingQuantile(q, window, slots=slots)
    points = _accumulate(tape)
    for t, value in points:
        op.update(t, value)
    now = points[-1][0] + advance
    granularity = window / slots
    oldest_live = int(now // granularity) - slots
    live = [v for t, v in points
            if int(t // granularity) > oldest_live]
    got = op.read(now)
    if not live:
        assert got is None
        return
    edges = op.edges
    merged = [0] * (len(edges) + 1)
    for value in live:
        merged[bisect.bisect_left(edges, value)] += 1
    rank = q * len(live)
    running = 0
    expected = math.inf
    for bucket, count in enumerate(merged):
        running += count
        if running >= rank:
            expected = edges[bucket] if bucket < len(edges) \
                else math.inf
            break
    assert got == expected


@given(tape=st.lists(
           st.tuples(
               st.floats(min_value=1e-3, max_value=5.0,
                         allow_nan=False),
               st.floats(min_value=0.0, max_value=50.0,
                         allow_nan=False)),
           min_size=3, max_size=60),
       window=_WINDOW,
       q=st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_sliding_quantile_is_conservative(tape, window, q):
    """The estimate never under-reports: it is an upper bound on the
    true empirical quantile of whatever samples are retained."""
    op = SlidingQuantile(q, window)
    points = _accumulate(tape)
    for t, value in points:
        op.update(t, value)
    now = points[-1][0]
    got = op.read(now)
    granularity = window / op.slots
    oldest_live = int(now // granularity) - op.slots
    live = sorted(v for t, v in points
                  if int(t // granularity) > oldest_live)
    assert live, "the newest sample's sub-window is always live"
    true_quantile = live[max(0, math.ceil(q * len(live)) - 1)]
    assert got >= true_quantile


def test_window_membership_is_strict():
    """A sample exactly one window old has fallen out (t > now − w)."""
    op = WindowedMean(10.0)
    op.update(0.0, 100.0)
    op.update(5.0, 50.0)
    assert op.read(9.999) == 75.0
    assert op.read(10.0) == 50.0  # the t=0 sample is gone
    assert op.read(14.999) == 50.0
    assert op.read(15.0) is None  # ...and now the t=5 one


def test_pipeline_fanout_updates_all_derived_nodes():
    pipeline = LivePipeline()
    pipeline.derive("s.mean", WindowedMean(10.0), "s")
    pipeline.derive("s.max", SlidingMax(10.0), "s")
    pipeline.derive("s.smooth", Ewma(5.0), "s")
    for t, value in ((1.0, 2.0), (2.0, 6.0), (3.0, 4.0)):
        pipeline.publish("s", value, t)
    assert pipeline.published == 3
    assert pipeline.read("s", 3.0) == 4.0
    assert pipeline.read("s.mean", 3.0) == 4.0
    assert pipeline.read("s.max", 3.0) == 6.0
    assert pipeline.names() == ["s", "s.max", "s.mean", "s.smooth"]
    assert pipeline.match("s.m*") == ["s.max", "s.mean"]
    assert pipeline.match("s") == ["s"]
    assert pipeline.match("missing") == []

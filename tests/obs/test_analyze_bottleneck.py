"""Bottleneck attribution: decision table and artifact-signal wiring."""

import pytest

from repro.obs.analyze import (CellSignals, TraceData,
                               attribute_bottleneck, build_waterfalls,
                               phase_windows, signals_from_trace)
from tests.obs.test_analyze_waterfall import pipeline_spans, span


def signals(master=0.2, slave=0.2, slope=0.0, pool=0.0, ship=0.0):
    return CellSignals(master_util=master,
                       slave_utils={"s1": slave},
                       backlog_slopes={"s1": slope},
                       pool_wait_share=pool, ship_share=ship,
                       window=(10.0, 30.0))


def test_idle_cell_is_none():
    diagnosis = attribute_bottleneck(signals())
    assert diagnosis.resource == "none"
    assert diagnosis.evidence["master_util"] == 0.2
    assert diagnosis.evidence["worst_slave"] == "s1"


def test_master_cpu_wins_over_everything():
    diagnosis = attribute_bottleneck(
        signals(master=0.95, slave=0.99, slope=10.0, pool=0.9,
                ship=0.9))
    assert diagnosis.resource == "master-cpu"


def test_slave_cpu_by_utilization():
    diagnosis = attribute_bottleneck(signals(slave=0.93))
    assert diagnosis.resource == "slave-cpu"
    assert diagnosis.evidence["worst_slave_util"] == 0.93


def test_slave_cpu_by_backlog_divergence():
    # A growing relay log names the apply thread even when the CPU
    # gauge sits below the threshold (bursty apply work).
    diagnosis = attribute_bottleneck(signals(slave=0.6, slope=2.5))
    assert diagnosis.resource == "slave-cpu"
    assert diagnosis.evidence["backlog_slope_events_per_s"] == \
        {"s1": 2.5}


def test_pool_starvation():
    diagnosis = attribute_bottleneck(signals(pool=0.4))
    assert diagnosis.resource == "pool"
    assert diagnosis.evidence["pool_wait_share"] == 0.4


def test_network_bound_cell():
    diagnosis = attribute_bottleneck(signals(ship=0.8))
    assert diagnosis.resource == "network"
    assert diagnosis.evidence["ship_share_of_staleness"] == 0.8


def test_worst_slave_tie_breaks_by_name():
    tied = CellSignals(master_util=0.1,
                       slave_utils={"s2": 0.5, "s1": 0.5})
    assert tied.worst_slave == "s1"
    assert CellSignals(master_util=0.1).worst_slave is None


def test_render_and_as_dict():
    diagnosis = attribute_bottleneck(signals(master=0.95))
    assert diagnosis.as_dict() == {"resource": "master-cpu",
                                   "evidence": diagnosis.evidence}
    assert diagnosis.render().startswith("master-cpu (")


# ------------------------------------------------- signals from trace
@pytest.fixture()
def traced():
    spans = [
        span("phase.baseline", 0.0, 5.0, track="experiment"),
        span("phase.workload", 5.0, 35.0, track="experiment", users=5,
             slaves=1, workload_start=5.0, steady_start=10.0,
             steady_end=30.0),
    ]
    spans += pipeline_spans(1, 12.0, 12.4, 12.4, 12.6)
    metrics = [
        {"name": "master.cpu_util", "kind": "gauge",
         "times": [5.0, 15.0, 25.0], "values": [0.2, 0.96, 0.94]},
        {"name": "slave.s1.cpu_util", "kind": "gauge",
         "times": [15.0, 25.0], "values": [0.5, 0.7]},
        {"name": "slave.s1.relay_backlog", "kind": "gauge",
         "times": [10.0, 20.0, 30.0], "values": [0.0, 20.0, 40.0]},
        {"name": "pool.wait_s", "kind": "histogram", "sum": 30.0,
         "count": 100},
        {"name": "driver.latency_s", "kind": "histogram", "sum": 100.0,
         "count": 100},
    ]
    return TraceData(spans=spans, metrics=metrics)


def test_signals_from_trace(traced):
    windows = phase_windows(traced)
    waterfalls = build_waterfalls(traced)
    result = signals_from_trace(traced, windows, waterfalls)
    # The 5.0s sample is outside (10, 30]; the mean covers 0.96/0.94.
    assert result.master_util == pytest.approx(0.95)
    assert result.slave_utils == {"s1": pytest.approx(0.6)}
    assert result.backlog_slopes["s1"] == pytest.approx(2.0)
    assert result.pool_wait_share == pytest.approx(0.3)
    # ship 0.4s of 0.6s staleness.
    assert result.ship_share == pytest.approx(0.4 / 0.6)
    assert result.window == (10.0, 30.0)
    assert attribute_bottleneck(result).resource == "master-cpu"


def test_signals_from_trace_without_gauges(traced):
    traced.metrics = []
    windows = phase_windows(traced)
    result = signals_from_trace(traced, windows,
                                build_waterfalls(traced))
    assert result.master_util == 0.0
    assert result.slave_utils == {}
    assert result.pool_wait_share == 0.0

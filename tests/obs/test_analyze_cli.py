"""`repro analyze` / `repro trace --format json` end-to-end tests."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_dirs(tmp_path_factory):
    """Two same-seed trace runs (the determinism baseline)."""
    root = tmp_path_factory.mktemp("traces")
    dirs = [str(root / "a"), str(root / "b")]
    for directory in dirs:
        code = main(["trace", "--slaves", "1", "--users", "5",
                     "--seed", "7", "--out", directory])
        assert code == 0
    return dirs


def run_analyze(capsys, *argv):
    code = main(["analyze", *argv])
    return code, capsys.readouterr().out


def test_analyze_text_report(trace_dirs, capsys):
    code, out = run_analyze(capsys, "--dir", trace_dirs[0])
    assert code == 0
    assert "staleness waterfall — slave-1" in out
    assert "telescoping:" in out and "(ok)" in out
    assert "reconciliation:" in out and "within tolerance" in out
    assert "bottleneck:" in out


def test_analyze_json_is_byte_deterministic(trace_dirs, capsys):
    outputs = []
    for directory in trace_dirs:
        code, out = run_analyze(capsys, "--dir", directory,
                                "--format", "json")
        assert code == 0
        outputs.append(out)
    assert outputs[0] == outputs[1]
    report = json.loads(outputs[0])
    assert report["telescoping"]["ok"] is True
    assert report["health"]["droppedSpans"] == 0
    assert abs(report["health"]["unattributedSimTime"]) <= 1e-6
    assert report["bottleneck"]["resource"] in (
        "master-cpu", "slave-cpu", "pool", "network", "none")
    assert report["waterfall"]["slave-1"]["events"] > 0


def test_analyze_missing_directory(tmp_path, capsys):
    code, out = run_analyze(capsys, "--dir", str(tmp_path / "nope"))
    assert code == 1
    assert "no spans.jsonl" in out


def test_analyze_refuses_dropped_spans(tmp_path, capsys):
    """A trace with dropped span ends must fail loudly, not produce a
    plausible-looking waterfall."""
    from repro.obs import Observability
    from repro.sim import Simulator
    sim = Simulator()
    observe = Observability().attach(sim)
    leaked = observe.tracer.open_span("leak.me")
    observe.finalize()
    leaked.end()            # late end -> dropped
    assert observe.tracer.dropped == 1
    observe.write_artifacts(str(tmp_path))
    code, out = run_analyze(capsys, "--dir", str(tmp_path))
    assert code == 1
    assert "dropped 1 late span end" in out


def test_analyze_refuses_unattributed_residue(trace_dirs, tmp_path,
                                              capsys):
    """Tampered meta (profiler residue) must also refuse analysis."""
    import os
    import shutil
    broken = tmp_path / "broken"
    shutil.copytree(trace_dirs[0], broken)
    os.remove(broken / "trace.json")
    spans_path = broken / "spans.jsonl"
    lines = spans_path.read_text().splitlines()
    meta = json.loads(lines[0])
    assert meta["kind"] == "meta"
    meta["unattributedSimTime"] = 0.5
    lines[0] = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    spans_path.write_text("\n".join(lines) + "\n")
    code, out = run_analyze(capsys, "--dir", str(broken))
    assert code == 1
    assert "unattributed" in out


def test_trace_json_format(tmp_path, capsys):
    code = main(["trace", "--slaves", "1", "--users", "5", "--seed",
                 "7", "--out", str(tmp_path), "--format", "json"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["cell"]["slaves"] == 1
    assert document["cell"]["users"] == 5
    assert document["droppedSpans"] == 0
    assert document["spans"] > 0
    assert document["result"]["throughput"] > 0
    assert document["result"]["bottleneck"] in (
        "master-cpu", "slave-cpu", "pool", "network", "none")
    assert set(document["artifacts"]) == {
        "trace.json", "spans.jsonl", "metrics.jsonl", "profile.txt"}
    assert document["profile"]["rows"]


def test_spans_jsonl_carries_health_meta(trace_dirs):
    first_line = open(
        f"{trace_dirs[0]}/spans.jsonl", encoding="utf-8").readline()
    meta = json.loads(first_line)
    assert meta["kind"] == "meta"
    assert meta["droppedSpans"] == 0
    assert "unattributedSimTime" in meta
    assert "finalSimTime" in meta

"""Knee detection on synthetic throughput curves."""

import pytest

from repro.obs.analyze import Knee, LINEAR_TOLERANCE, detect_knee


def test_perfectly_linear_curve_has_no_knee():
    knee = detect_knee((10, 20, 30), (5.0, 10.0, 15.0))
    assert not knee.saturated
    assert knee.knee_users is None
    assert knee.linear_limit_users == 30
    assert knee.slope == pytest.approx(0.5)
    assert knee.capacity == pytest.approx(15.0)


def test_hard_plateau_knee_at_capacity_intersection():
    # Linear at 0.1 ops/s/user up to 100 users, then a hard 10 ops/s
    # ceiling: the intersection is exactly 100 users.
    knee = detect_knee((50, 100, 150, 200), (5.0, 10.0, 10.0, 10.0))
    assert knee.saturated
    assert knee.linear_limit_users == 100
    assert knee.knee_users == pytest.approx(100.0)
    assert knee.capacity == pytest.approx(10.0)


def test_soft_knee_lands_between_grid_points():
    # The 150-user point already sags below linear; capacity keeps
    # creeping up, so the intersection lands past the linear limit.
    knee = detect_knee((50, 100, 150, 200), (5.0, 10.0, 12.0, 12.5))
    assert knee.saturated
    assert knee.linear_limit_users == 100
    assert 100.0 < knee.knee_users < 150.0


def test_tolerance_keeps_jittery_points_linear():
    # 4 % sag is within the 10 % band — still linear.
    knee = detect_knee((50, 100), (5.0, 9.6))
    assert not knee.saturated
    assert knee.linear_limit_users == 100
    # A 20 % sag is not.
    knee = detect_knee((50, 100), (5.0, 8.0))
    assert knee.saturated
    assert knee.linear_limit_users == 50


def test_refit_uses_all_linear_points():
    # Anchor slope is 0.1; the second point pulls the refit up a bit.
    knee = detect_knee((50, 100, 200), (5.0, 10.5, 11.0))
    assert 0.1 < knee.slope < 0.105
    assert knee.saturated


def test_as_dict_round_trips():
    knee = detect_knee((50, 100, 150, 200), (5.0, 10.0, 10.0, 10.0))
    data = knee.as_dict()
    assert data["knee_users"] == knee.knee_users
    assert data["linear_limit_users"] == 100
    assert data["saturated"] is True


def test_validation():
    with pytest.raises(ValueError, match="length mismatch"):
        detect_knee((1, 2), (1.0,))
    with pytest.raises(ValueError, match="empty sweep"):
        detect_knee((), ())
    with pytest.raises(ValueError, match="positive"):
        detect_knee((0, 10), (0.0, 1.0))
    with pytest.raises(ValueError, match="positive"):
        detect_knee((10, 20), (0.0, 1.0))


def test_custom_tolerance():
    users, tputs = (50, 100), (5.0, 9.6)
    assert not detect_knee(users, tputs,
                           tolerance=LINEAR_TOLERANCE).saturated
    assert detect_knee(users, tputs, tolerance=0.01).saturated

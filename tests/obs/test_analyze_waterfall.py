"""Staleness waterfalls: synthetic decompositions and a real run."""

import pytest

from repro.obs.analyze import (AnalysisError, EventWaterfall, STAGES,
                               TraceData, aggregate_stages, analyze_trace,
                               build_waterfalls, from_session,
                               phase_windows, reconcile_heartbeats,
                               telescoping_error, trimmed_mean_of)
from tests.obs.test_instrumentation import observed_run


def span(name, start, end, track="repl:s1", **attrs):
    record = {"id": 1, "name": name, "cat": "replication",
              "track": track, "start": start, "end": end,
              "dur": end - start}
    if attrs:
        record["attrs"] = attrs
    return record


def pipeline_spans(position, binlog, ship_end, relay_end, apply_end,
                   track="repl:s1"):
    return [
        span("repl.binlog", binlog, binlog, track="repl:master",
             position=position),
        span("repl.ship", binlog, ship_end, track=track,
             position=position),
        span("repl.relay", ship_end, relay_end, track=track,
             position=position),
        span("repl.apply", relay_end, apply_end, track=track,
             position=position),
    ]


@pytest.fixture()
def synthetic():
    spans = pipeline_spans(1, 10.0, 10.05, 10.05, 10.08)
    spans += pipeline_spans(2, 11.0, 11.06, 11.10, 11.20)
    return TraceData(spans=spans)


def test_waterfall_decomposition(synthetic):
    waterfalls = build_waterfalls(synthetic)
    assert set(waterfalls) == {"s1"}
    first, second = waterfalls["s1"]
    assert first.position == 1
    assert first.ship == pytest.approx(0.05)
    assert first.relay_wait == pytest.approx(0.0)
    assert first.apply == pytest.approx(0.03)
    assert first.staleness == pytest.approx(0.08)
    assert second.relay_wait == pytest.approx(0.04)
    assert second.staleness == pytest.approx(0.20)


def test_stages_telescope_to_staleness(synthetic):
    for event in build_waterfalls(synthetic)["s1"]:
        assert telescoping_error(event) <= 1e-12
        total = sum(event.stage(stage) for stage in STAGES)
        assert total == pytest.approx(event.staleness, abs=1e-12)


def test_incomplete_events_are_skipped(synthetic):
    # Position 3 never gets its apply span (still in flight).
    synthetic.spans += pipeline_spans(3, 12.0, 12.05, 12.06, 12.1)[:-1]
    waterfalls = build_waterfalls(synthetic)
    assert [w.position for w in waterfalls["s1"]] == [1, 2]


def test_dropped_marker_excludes_span(synthetic):
    extra = pipeline_spans(4, 13.0, 13.05, 13.06, 13.1)
    extra[-1]["attrs"]["dropped"] = True
    synthetic.spans += extra
    assert [w.position for w in build_waterfalls(synthetic)["s1"]] \
        == [1, 2]


def test_aggregate_stages(synthetic):
    stats = aggregate_stages(build_waterfalls(synthetic)["s1"])
    assert set(stats) == set(STAGES) | {"staleness"}
    assert stats["ship"].count == 2
    assert stats["ship"].mean == pytest.approx(0.055)
    assert stats["staleness"].max == pytest.approx(0.20)
    assert stats["staleness"].p50 in (pytest.approx(0.08),
                                      pytest.approx(0.20))
    with pytest.raises(AnalysisError):
        aggregate_stages([])


def test_trimmed_mean_of():
    assert trimmed_mean_of([1.0]) == 1.0
    # 20 values, 5 % trim drops one per end.
    values = [1.0] * 18 + [100.0, -100.0]
    assert trimmed_mean_of(values) == pytest.approx(1.0)
    with pytest.raises(AnalysisError):
        trimmed_mean_of([])


def test_phase_windows_require_phase_spans(synthetic):
    with pytest.raises(AnalysisError, match="phase.baseline"):
        phase_windows(synthetic)
    synthetic.spans.append(span("phase.baseline", 0.0, 5.0,
                                track="experiment"))
    synthetic.spans.append(span("phase.workload", 5.0, 35.0,
                                track="experiment", users=5, slaves=1))
    with pytest.raises(AnalysisError, match="workload_start"):
        phase_windows(synthetic)
    synthetic.spans[-1]["attrs"].update(workload_start=5.0,
                                        steady_start=10.0,
                                        steady_end=30.0)
    windows = phase_windows(synthetic)
    assert windows.baseline_end == 5.0
    assert windows.steady_start == 10.0
    assert windows.steady_end == 30.0


def test_reconciliation_mirrors_estimator_recipe(synthetic):
    synthetic.spans.append(span("phase.baseline", 0.0, 5.0,
                                track="experiment"))
    synthetic.spans.append(
        span("phase.workload", 5.0, 35.0, track="experiment",
             users=5, slaves=1, workload_start=5.0, steady_start=10.0,
             steady_end=30.0))
    # Heartbeat at position 1 (baseline window, staleness 0.08) and
    # position 2 (steady window, staleness 0.20); one more inserted in
    # the steady window but never applied -> censored.
    synthetic.spans.append(span("repl.heartbeat", 4.0, 4.0,
                               track="repl:master", hb_id=1,
                               position=1, inserted=4.0))
    synthetic.spans.append(span("repl.heartbeat", 11.0, 11.0,
                               track="repl:master", hb_id=2,
                               position=2, inserted=11.0))
    synthetic.spans.append(span("repl.heartbeat", 29.0, 29.0,
                               track="repl:master", hb_id=3,
                               position=99, inserted=29.0))
    synthetic.metrics.append({"name": "slave.s1.relative_delay_ms",
                              "kind": "gauge", "times": [35.0],
                              "values": [119.0]})
    windows = phase_windows(synthetic)
    waterfalls = build_waterfalls(synthetic)["s1"]
    reconciliation = reconcile_heartbeats(synthetic, "s1", waterfalls,
                                          windows)
    assert reconciliation.loaded == 1
    assert reconciliation.baseline == 1
    assert reconciliation.censored == 1
    # (0.20 - 0.08) s = 120 ms against the gauge's 119 ms.
    assert reconciliation.waterfall_relative_ms == pytest.approx(120.0)
    assert reconciliation.estimator_relative_ms == 119.0
    assert reconciliation.discrepancy_ms == pytest.approx(1.0)
    assert reconciliation.within_tolerance


def test_out_of_tolerance_is_flagged():
    from repro.obs.analyze import HeartbeatReconciliation
    reconciliation = HeartbeatReconciliation(
        slave="s1", loaded=10, baseline=10, censored=0,
        waterfall_relative_ms=50.0, estimator_relative_ms=10.0)
    assert reconciliation.within_tolerance is False
    missing = HeartbeatReconciliation(
        slave="s1", loaded=0, baseline=0, censored=0,
        waterfall_relative_ms=None, estimator_relative_ms=None)
    assert missing.within_tolerance is None


# ---------------------------------------------------------- real run
@pytest.fixture(scope="module")
def real_run():
    return observed_run(monitor_period=1.0)


def test_real_run_telescopes_exactly(real_run):
    _, observe = real_run
    data = from_session(observe)
    waterfalls = build_waterfalls(data)
    assert waterfalls, "no replication events traced"
    for events in waterfalls.values():
        for event in events:
            assert telescoping_error(event) <= 1e-12
            assert event.binlog_wait >= 0.0
            assert event.ship > 0.0
            assert event.apply > 0.0


def test_real_run_full_report(real_run):
    _, observe = real_run
    report = analyze_trace(from_session(observe))
    assert report["telescoping"]["ok"]
    assert report["cell"] == {"users": 5, "slaves": 1}
    entry = report["waterfall"]["slave-1"]
    assert entry["events"] == report["telescoping"]["events"]
    heartbeats = entry["heartbeats"]
    assert heartbeats["loaded"] > 0
    assert heartbeats["within_tolerance"] is True
    # Staleness mean must equal the sum of the stage means (the
    # aggregate-level telescoping the waterfall promises).
    stage_sum = sum(entry["stages_ms"][stage]["mean"]
                    for stage in STAGES)
    assert stage_sum == pytest.approx(entry["staleness_ms"]["mean"],
                                      abs=1e-3)


def test_real_run_reconciles_with_estimator(real_run):
    result, observe = real_run
    data = from_session(observe)
    windows = phase_windows(data)
    waterfalls = build_waterfalls(data)
    reconciliation = reconcile_heartbeats(
        data, "slave-1", waterfalls["slave-1"], windows)
    assert reconciliation.estimator_relative_ms == pytest.approx(
        result.per_slave_delay_ms[0])
    assert reconciliation.within_tolerance

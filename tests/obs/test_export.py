"""Exporters: JSONL schema, Chrome trace-event shape, determinism."""

import json

from repro.obs import (KernelProfiler, MetricsRegistry, Tracer,
                       chrome_trace, metrics_jsonl, spans_jsonl)
from repro.sim import Simulator


def traced_run():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def worker(sim):
        with tracer.span("outer", category="test", n=1):
            tracer.instant("marker", category="test")
            with tracer.span("inner", category="test"):
                yield sim.timeout(1.0)
            yield sim.timeout(0.5)

    sim.process(worker(sim), name="w")
    sim.run()
    return sim, tracer


def test_spans_jsonl_one_record_per_span():
    _, tracer = traced_run()
    lines = spans_jsonl(tracer).strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert [r["name"] for r in records] == ["outer", "marker", "inner"]
    outer, marker, inner = records
    assert outer["dur"] == 1.5
    assert inner["parent"] == outer["id"]
    assert marker["instant"] is True
    assert marker["dur"] == 0
    assert outer["attrs"] == {"n": 1}
    assert outer["track"] == "w"


def test_jsonl_sorted_by_start_then_id():
    sim = Simulator()
    tracer = Tracer(sim)
    first = tracer.open_span("a")
    second = tracer.open_span("b")
    second.end()
    first.end()
    records = [json.loads(line)
               for line in spans_jsonl(tracer).splitlines()]
    # Same start: falls back to span id, not end order.
    assert [r["name"] for r in records] == ["a", "b"]


def test_empty_tracer_exports_empty_string():
    sim = Simulator()
    tracer = Tracer(sim)
    assert spans_jsonl(tracer) == ""
    assert metrics_jsonl(MetricsRegistry()) == ""


def test_chrome_trace_document_shape():
    _, tracer = traced_run()
    doc = json.loads(chrome_trace(tracer))
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    metadata = [e for e in events if e["ph"] == "M"]
    assert {m["name"] for m in metadata} == \
        {"process_name", "thread_name", "thread_sort_index"}
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    outer = next(e for e in complete if e["name"] == "outer")
    assert outer["ts"] == 0.0
    assert outer["dur"] == 1.5e6  # sim seconds -> microseconds
    (instant,) = [e for e in events if e["ph"] == "i"]
    assert instant["s"] == "t"
    inner = next(e for e in complete if e["name"] == "inner")
    assert inner["args"]["parent_id"] == outer["args"]["span_id"]


def test_chrome_trace_metadata_riders():
    sim, tracer = traced_run()
    profiler = KernelProfiler()
    profiler.on_execute("w", 1.5)
    registry = MetricsRegistry()
    registry.counter("ops").inc(3)
    doc = json.loads(chrome_trace(tracer, profiler=profiler,
                                  metrics=registry))
    assert doc["kernelProfile"]["total_sim_time"] == 1.5
    assert doc["metrics"][0] == {"name": "ops", "kind": "counter",
                                 "value": 3}
    assert "droppedSpans" not in doc
    tracer.close()
    tracer.open_span("late").end()
    assert json.loads(chrome_trace(tracer))["droppedSpans"] == 1


def test_exports_byte_identical_across_runs():
    _, first = traced_run()
    _, second = traced_run()
    assert spans_jsonl(first) == spans_jsonl(second)
    assert chrome_trace(first) == chrome_trace(second)

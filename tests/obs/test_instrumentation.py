"""End-to-end observability: a tiny observed cell must produce spans
for the whole request path and the whole replication pipeline, with
stage durations that reconcile, and byte-identical artifacts across
same-seed runs."""

import json

import pytest

from repro.experiments import LocationConfig, PAPER_50_50, run_experiment
from repro.obs import Observability, chrome_trace, spans_jsonl
from repro.workloads.cloudstone import Phases

PHASES = Phases(ramp_up=5.0, steady=20.0, ramp_down=5.0)


def tiny_config(seed=7):
    return PAPER_50_50(LocationConfig.SAME_ZONE, n_slaves=1, n_users=5,
                       phases=PHASES, seed=seed, data_size=30,
                       baseline_duration=5.0)


def observed_run(seed=7, **kwargs):
    observe = Observability(**kwargs)
    result = run_experiment(tiny_config(seed), observe=observe)
    return result, observe


@pytest.fixture(scope="module")
def run():
    return observed_run()


def spans_named(observe, name):
    return [s for s in observe.tracer.spans if s.name == name]


def test_request_path_spans_present(run):
    _, observe = run
    for name in ("driver.request", "pool.acquire", "proxy.execute",
                 "db.execute"):
        assert spans_named(observe, name), f"missing {name} spans"


def test_replication_pipeline_spans_present(run):
    _, observe = run
    for name in ("repl.binlog", "repl.ship", "repl.relay", "repl.apply"):
        assert spans_named(observe, name), f"missing {name} spans"
    assert spans_named(observe, "phase.baseline")
    assert spans_named(observe, "phase.workload")


def test_no_open_or_dropped_spans(run):
    _, observe = run
    assert observe.tracer.open_scoped_spans == 0
    assert observe.tracer.dropped == 0


def test_request_span_nests_pool_and_proxy(run):
    _, observe = run
    by_id = {s.span_id: s for s in observe.tracer.spans}
    requests = spans_named(observe, "driver.request")
    assert requests
    for name in ("pool.acquire", "proxy.execute"):
        for span in spans_named(observe, name):
            parent = by_id.get(span.parent_id)
            assert parent is not None and parent.name == "driver.request"


def test_db_execute_nests_under_proxy(run):
    _, observe = run
    by_id = {s.span_id: s for s in observe.tracer.spans}
    executes = [s for s in spans_named(observe, "db.execute")
                if s.parent_id in by_id]
    assert executes
    assert all(by_id[s.parent_id].name == "proxy.execute"
               for s in executes)


def test_replication_stages_telescope(run):
    """ship.end == relay.start and relay.end == apply.start for every
    event, so summed stage durations equal apply_end - ship_start —
    the staleness decomposition the tentpole promises."""
    _, observe = run
    by_position = {}
    for name in ("repl.ship", "repl.relay", "repl.apply"):
        for span in spans_named(observe, name):
            by_position.setdefault(span.attributes["position"],
                                   {})[name] = span
    applied = {pos: stages for pos, stages in by_position.items()
               if len(stages) == 3}
    assert applied, "no fully-traced replication events"
    for stages in applied.values():
        ship, relay, apply_ = (stages["repl.ship"], stages["repl.relay"],
                               stages["repl.apply"])
        assert ship.end_time == pytest.approx(relay.start, abs=1e-12)
        assert relay.end_time == pytest.approx(apply_.start, abs=1e-12)
        total = ship.duration + relay.duration + apply_.duration
        assert total == pytest.approx(apply_.end_time - ship.start)


def test_binlog_instants_cover_shipped_events(run):
    _, observe = run
    binlog_positions = {s.attributes["position"]
                        for s in spans_named(observe, "repl.binlog")}
    shipped = {s.attributes["position"]
               for s in spans_named(observe, "repl.ship")}
    assert shipped <= binlog_positions


def test_profiler_decomposes_sim_time(run):
    _, observe = run
    total = PHASES.total + 5.0  # phases + baseline
    assert observe.profiler.total_sim_time == pytest.approx(total,
                                                            abs=1.0)
    owners = {row["owner"] for row in observe.profiler.rows()}
    assert "user-*" in owners
    assert "sql-thread:slave-*" in owners


def test_monitor_gauges_published(run):
    _, observe = run
    names = [entry["name"] for entry in observe.metrics.snapshot()]
    assert "master.cpu_util" in names
    assert any(name.endswith(".relay_backlog") for name in names)
    assert "pool.borrows" in names
    assert "driver.latency_s" in names
    assert "result.throughput" in names


def test_observation_does_not_perturb_results():
    """Recording is read-only: an observed run must measure exactly
    what an unobserved run measures."""
    observed, _ = observed_run()
    unobserved = run_experiment(tiny_config())
    assert observed.throughput == unobserved.throughput
    assert observed.mean_latency_s == unobserved.mean_latency_s
    assert observed.relative_delay_ms == unobserved.relative_delay_ms


def test_same_seed_byte_identical_artifacts():
    _, first = observed_run()
    _, second = observed_run()
    assert spans_jsonl(first.tracer) == spans_jsonl(second.tracer)
    assert chrome_trace(first.tracer, profiler=first.profiler,
                        metrics=first.metrics) == \
        chrome_trace(second.tracer, profiler=second.profiler,
                     metrics=second.metrics)


def test_different_seed_different_trace():
    _, first = observed_run(seed=7)
    _, second = observed_run(seed=8)
    assert spans_jsonl(first.tracer) != spans_jsonl(second.tracer)


def test_write_artifacts(tmp_path):
    _, observe = observed_run(seed=3)
    paths = observe.write_artifacts(str(tmp_path))
    assert set(paths) == {"trace.json", "spans.jsonl", "metrics.jsonl",
                          "profile.txt"}
    doc = json.loads((tmp_path / "trace.json").read_text())
    assert doc["traceEvents"]
    assert doc["kernelProfile"]["rows"]
    assert "kernel profile" in (tmp_path / "profile.txt").read_text()


def test_observability_attaches_once():
    observe = Observability()
    run_experiment(tiny_config(), observe=observe)
    with pytest.raises(RuntimeError):
        run_experiment(tiny_config(), observe=observe)


def test_partial_observability():
    observe = Observability(trace=False, profile=False,
                            monitor_period=None)
    run_experiment(tiny_config(), observe=observe)
    assert observe.tracer is None
    assert observe.profiler is None
    assert observe.metrics is not None
    names = [entry["name"] for entry in observe.metrics.snapshot()]
    assert "pool.borrows" in names
    assert "master.cpu_util" not in names  # no monitor was started

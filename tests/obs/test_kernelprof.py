"""Kernel profiler: exact sim-time decomposition and grouping."""

import pytest

from repro.obs import KernelProfiler, render_profile
from repro.sim import Simulator


def observed_sim(n_workers=3):
    sim = Simulator()
    profiler = KernelProfiler()
    sim.profiler = profiler

    def worker(sim, period):
        while True:
            yield sim.timeout(period)

    for index in range(n_workers):
        sim.process(worker(sim, 1.0 + index), name=f"worker-{index}")
    return sim, profiler


def test_attributed_time_telescopes_to_sim_now():
    sim, profiler = observed_sim()
    sim.run(until=50.0)
    # Clock advances telescope: per-owner sums decompose sim.now
    # exactly (the trailing run(until=...) idle tail is not an event).
    assert profiler.total_sim_time == pytest.approx(sim.now, abs=2.0)
    assert profiler.total_sim_time <= sim.now + 1e-9


def test_grouped_rows_collapse_numbered_processes():
    sim, profiler = observed_sim(n_workers=5)
    sim.run(until=20.0)
    rows = profiler.rows(grouped=True)
    (worker_row,) = [row for row in rows if row["owner"] == "worker-*"]
    assert worker_row["processes"] == 5
    ungrouped = profiler.rows(grouped=False)
    assert sum(1 for row in ungrouped
               if row["owner"].startswith("worker-")) == 5


def test_rows_sorted_by_sim_time_desc():
    profiler = KernelProfiler()
    profiler.on_execute("fast", 1.0)
    profiler.on_execute("slow", 10.0)
    profiler.on_execute("idle", 0.0)
    owners = [row["owner"] for row in profiler.rows()]
    assert owners == ["slow", "fast", "idle"]


def test_schedule_counts_include_unexecuted_events():
    profiler = KernelProfiler()
    profiler.on_schedule("p")
    profiler.on_schedule("p")
    profiler.on_execute("p", 0.5)
    (row,) = profiler.rows()
    assert row["scheduled"] == 2
    assert row["executed"] == 1
    assert row["sim_time"] == 0.5


def test_main_context_attributed_to_kernel():
    sim = Simulator()
    sim.profiler = KernelProfiler()
    sim.timeout(5.0)  # scheduled from setup code, not a process
    sim.run()
    rows = {row["owner"]: row for row in sim.profiler.rows()}
    assert "<kernel>" in rows
    assert rows["<kernel>"]["sim_time"] == pytest.approx(5.0)


def test_render_profile_table():
    sim, profiler = observed_sim()
    sim.run(until=10.0)
    text = render_profile(profiler)
    assert "kernel profile" in text
    assert "worker-*" in text
    assert text.strip().splitlines()[-1].startswith("total")


def test_snapshot_shape():
    sim, profiler = observed_sim()
    sim.run(until=5.0)
    snapshot = profiler.snapshot()
    assert set(snapshot) == {"total_events", "total_sim_time", "rows"}
    assert snapshot["total_events"] == profiler.total_events

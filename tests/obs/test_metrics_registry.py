"""Metrics registry unit tests: instruments, snapshots, null twin."""

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS


def test_counter_get_or_create_and_inc():
    registry = MetricsRegistry()
    registry.counter("ops").inc()
    registry.counter("ops").inc(2.0)
    assert registry.counter("ops").value == 3.0
    assert len(registry) == 1
    assert "ops" in registry


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("ops").inc(-1.0)


def test_gauge_keeps_timestamped_history():
    clock = {"now": 0.0}
    registry = MetricsRegistry(now_fn=lambda: clock["now"])
    gauge = registry.gauge("backlog")
    assert gauge.value == 0.0
    gauge.set(4)
    clock["now"] = 10.0
    gauge.set(7)
    assert gauge.value == 7.0
    assert list(gauge.series.times) == [0.0, 10.0]
    assert list(gauge.series.values) == [4.0, 7.0]


def test_histogram_buckets_and_overflow():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 100.0):
        histogram.observe(value)
    assert histogram.counts == [1, 2, 1]
    assert histogram.count == 4
    assert histogram.mean == pytest.approx((0.05 + 0.5 + 0.5 + 100.0) / 4)


def test_histogram_requires_sorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("bad", buckets=(1.0, 0.1))


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_snapshot_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("zeta").inc()
    registry.gauge("alpha").set(1.0)
    registry.histogram("mid").observe(0.2)
    names = [entry["name"] for entry in registry.snapshot()]
    assert names == ["alpha", "mid", "zeta"]
    kinds = [entry["kind"] for entry in registry.snapshot()]
    assert kinds == ["gauge", "histogram", "counter"]


def test_null_metrics_is_inert():
    assert not NULL_METRICS.enabled
    NULL_METRICS.counter("a").inc()
    NULL_METRICS.gauge("b").set(3.0)
    NULL_METRICS.histogram("c", buckets=DEFAULT_BUCKETS).observe(1.0)
    assert len(NULL_METRICS) == 0
    assert "a" not in NULL_METRICS
    assert NULL_METRICS.snapshot() == []

"""Tracer unit tests: span trees, per-process context, null tracer."""

import pytest

from repro.obs import NULL_TRACER, Tracer
from repro.obs.tracer import ROOT
from repro.sim import Simulator


def test_span_records_sim_time_interval():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer

    def process(sim):
        with tracer.span("work", category="test"):
            yield sim.timeout(2.5)

    sim.process(process(sim))
    sim.run()
    (span,) = tracer.spans
    assert span.name == "work"
    assert span.start == pytest.approx(0.0)
    assert span.end_time == pytest.approx(2.5)
    assert span.duration == pytest.approx(2.5)


def test_nested_spans_parent_link():
    sim = Simulator()
    tracer = Tracer(sim)

    def process(sim):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                yield sim.timeout(1.0)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ROOT

    sim.process(process(sim))
    sim.run()
    assert [s.name for s in tracer.spans] == ["inner", "outer"]


def test_context_is_per_process():
    """Two interleaved processes must not adopt each other's spans."""
    sim = Simulator()
    tracer = Tracer(sim)

    def worker(sim, delay):
        with tracer.span("job", delay=delay):
            yield sim.timeout(delay)

    sim.process(worker(sim, 1.0), name="worker-a")
    sim.process(worker(sim, 2.0), name="worker-b")
    sim.run()
    # Neither nested under the other despite interleaved execution.
    assert len(tracer.spans) == 2
    assert all(span.parent_id == ROOT for span in tracer.spans)
    assert len({span.track for span in tracer.spans}) == 2


def test_track_defaults_to_process_name():
    sim = Simulator()
    tracer = Tracer(sim)

    def worker(sim):
        with tracer.span("job"):
            yield sim.timeout(1.0)

    sim.process(worker(sim), name="my-worker")
    sim.run()
    assert tracer.spans[0].track == "my-worker"


def test_explicit_end_and_idempotence():
    sim = Simulator()
    tracer = Tracer(sim)
    span = tracer.span("setup")
    span.end()
    span.end()  # second end is a no-op
    assert len(tracer.spans) == 1
    assert tracer.open_scoped_spans == 0


def test_open_span_crosses_processes():
    sim = Simulator()
    tracer = Tracer(sim)
    box = {}

    def sender(sim):
        box["span"] = tracer.open_span("flight", track="net")
        yield sim.timeout(3.0)

    def receiver(sim):
        yield sim.timeout(1.5)
        box["span"].end()

    sim.process(sender(sim))
    sim.process(receiver(sim))
    sim.run()
    (span,) = tracer.spans
    assert span.track == "net"
    assert span.duration == pytest.approx(1.5)


def test_instant_has_zero_duration():
    sim = Simulator()
    tracer = Tracer(sim)
    marker = tracer.instant("tick", position=3)
    assert marker.instant
    assert marker.duration == 0.0
    assert marker.attributes == {"position": 3}


def test_exception_marks_error_attribute():
    sim = Simulator()
    tracer = Tracer(sim)
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    (span,) = tracer.spans
    assert span.attributes["error"] == "RuntimeError"


def test_close_drops_late_ends():
    sim = Simulator()
    tracer = Tracer(sim)
    late = tracer.open_span("late")
    tracer.close()
    late.end()
    assert tracer.spans == []
    assert tracer.dropped == 1


def test_current_span_tracks_innermost():
    sim = Simulator()
    tracer = Tracer(sim)
    assert tracer.current_span() is None
    with tracer.span("outer") as outer:
        assert tracer.current_span() is outer
        with tracer.span("inner") as inner:
            assert tracer.current_span() is inner
        assert tracer.current_span() is outer
    assert tracer.current_span() is None


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    span = NULL_TRACER.span("anything", key="value")
    span.end()
    with NULL_TRACER.span("scoped") as scoped:
        scoped.set_attribute("more", 1)
    assert NULL_TRACER.span("x") is NULL_TRACER.open_span("y")
    assert NULL_TRACER.instant("z") is span
    assert NULL_TRACER.current_span() is None
    assert NULL_TRACER.spans == ()


def test_simulator_defaults_to_null_observability():
    sim = Simulator()
    assert sim.tracer is NULL_TRACER
    assert not sim.metrics.enabled
    assert sim.profiler is None

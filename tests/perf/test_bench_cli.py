"""`repro bench` end-to-end: list/run/out/compare/profile flows and
the injected-regression exit code."""

import json

import pytest

from repro.cli import main
from repro.perf import SCHEMA_VERSION, load_bench_file, stable_view

QUICK = ["bench", "--bench", "sql.parse", "--repeats", "2",
         "--warmup", "0"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list_names_every_bench(capsys):
    code, out = run_cli(capsys, "bench", "--list")
    assert code == 0
    for name in ("kernel.events", "sql.parse", "db.query_mix",
                 "repl.binlog", "e2e.cell"):
        assert name in out


def test_unknown_bench_exits_2(capsys):
    code, out = run_cli(capsys, "bench", "--bench", "bogus")
    assert code == 2
    assert "unknown benchmark 'bogus'" in out


def test_bad_repeats_exits_2(capsys):
    code, out = run_cli(capsys, *QUICK[:-4], "--repeats", "0")
    assert code == 2
    assert "--repeats must be >= 1" in out


def test_text_run_prints_table(capsys):
    code, out = run_cli(capsys, *QUICK)
    assert code == 0
    assert "repro bench — seed=0 scale=quick" in out
    assert "sql.parse" in out and "statements/s" in out


def test_out_writes_canonical_document(tmp_path, capsys):
    path = tmp_path / "BENCH_x.json"
    code, out = run_cli(capsys, *QUICK, "--out", str(path))
    assert code == 0
    assert f"wrote {path}" in out
    document = load_bench_file(str(path))
    assert document["schemaVersion"] == SCHEMA_VERSION
    assert set(document["benchmarks"]) == {"sql.parse"}
    assert document["run"] == {"seed": 0, "scale": "quick",
                               "repeats": 2, "warmup": 0}


def test_same_seed_documents_stable_outside_timing(tmp_path, capsys):
    """The ISSUE acceptance: two --out runs at one seed differ only
    in timing/host fields."""
    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path in paths:
        assert run_cli(capsys, *QUICK, "--out", str(path))[0] == 0
    views = [json.dumps(stable_view(load_bench_file(str(path))),
                        sort_keys=True) for path in paths]
    assert views[0] == views[1]


def test_compare_against_self_passes(tmp_path, capsys):
    path = tmp_path / "base.json"
    assert run_cli(capsys, *QUICK, "--out", str(path))[0] == 0
    code, out = run_cli(capsys, *QUICK, "--compare", str(path),
                        "--tolerance", "200")
    assert code == 0
    assert "bench compare: ok" in out


def test_compare_flags_injected_regression(tmp_path, capsys):
    """Shrink the baseline median 100x: the fresh run must exit 1."""
    path = tmp_path / "base.json"
    assert run_cli(capsys, *QUICK, "--out", str(path))[0] == 0
    baseline = json.loads(path.read_text())
    for bench in baseline["benchmarks"].values():
        bench["stats"]["median_s"] /= 100.0
    path.write_text(json.dumps(baseline))
    code, out = run_cli(capsys, *QUICK, "--compare", str(path),
                        "--tolerance", "10")
    assert code == 1
    assert "REGRESSION" in out
    assert "bench compare: FAIL" in out


def test_partial_run_does_not_flag_unselected_as_missing(tmp_path,
                                                         capsys):
    """--bench sql.parse vs a full-suite baseline: only sql.parse is
    compared."""
    path = tmp_path / "full.json"
    full = {"schema": "repro-bench", "schemaVersion": SCHEMA_VERSION,
            "host": {}, "run": {"seed": 0, "scale": "quick",
                                "repeats": 2, "warmup": 0},
            "benchmarks": {
                name: {"subsystem": "x", "unit": "events",
                       "counters": {"events": 1},
                       "stats": {"min_s": 100.0, "median_s": 100.0,
                                 "mean_s": 100.0, "cov": 0.0,
                                 "repeats": 2},
                       "rate_per_s": 0.01}
                for name in ("sql.parse", "kernel.events")}}
    path.write_text(json.dumps(full))
    code, out = run_cli(capsys, *QUICK, "--compare", str(path))
    assert code == 0
    assert "kernel.events" not in out.split("bench compare")[1]


def test_schema_mismatch_fails_via_cli(tmp_path, capsys):
    path = tmp_path / "old.json"
    assert run_cli(capsys, *QUICK, "--out", str(path))[0] == 0
    stale = json.loads(path.read_text())
    stale["schemaVersion"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(stale))
    code, out = run_cli(capsys, *QUICK, "--compare", str(path))
    assert code == 1
    assert "schema version mismatch" in out


def test_compare_missing_file_exits_2(tmp_path, capsys):
    code, out = run_cli(capsys, *QUICK, "--compare",
                        str(tmp_path / "nope.json"))
    assert code == 2
    assert "error" in out


def test_profile_attribution_and_collapsed_out(tmp_path, capsys):
    collapsed = tmp_path / "bench.collapsed"
    code, out = run_cli(capsys, *QUICK, "--profile", "--profile-out",
                        str(collapsed))
    assert code == 0
    assert "wall-clock profile" in out
    assert "attributed" in out
    lines = collapsed.read_text().strip().splitlines()
    assert lines
    for line in lines:
        frames, micros = line.rsplit(" ", 1)
        assert frames and int(micros) > 0


def test_json_format_embeds_document_compare_and_profile(tmp_path,
                                                         capsys):
    path = tmp_path / "base.json"
    assert run_cli(capsys, *QUICK, "--out", str(path))[0] == 0
    # Profiling inflates timings several-fold vs the unprofiled
    # baseline, so the tolerance here is deliberately absurd.
    code, out = run_cli(capsys, *QUICK, "--compare", str(path),
                        "--tolerance", "100000", "--profile",
                        "--format", "json")
    assert code == 0
    payload = json.loads(out)
    assert payload["schema"] == "repro-bench"
    assert payload["compare"]["exit_code"] == 0
    assert payload["wallProfile"]["attributed_share"] \
        == pytest.approx(1.0, abs=0.05)


def test_trace_wall_profile_writes_sidecars(tmp_path, capsys):
    out_dir = tmp_path / "traces"
    code = main(["trace", "--users", "5", "--slaves", "1", "--seed",
                 "7", "--out", str(out_dir), "--wall-profile"])
    capsys.readouterr()
    assert code == 0
    assert (out_dir / "wallprof.txt").is_file()
    assert (out_dir / "wallprof.collapsed").is_file()
    assert "wall-clock profile" in (out_dir / "wallprof.txt") \
        .read_text()


def test_chaos_wall_profile_keeps_stdout_byte_identical(tmp_path,
                                                        capsys):
    plain = main(["chaos", "--seed", "42", "--format", "json"])
    plain_out = capsys.readouterr().out
    profiled = main(["chaos", "--seed", "42", "--format", "json",
                     "--out", str(tmp_path / "chaos"),
                     "--wall-profile"])
    profiled_out = capsys.readouterr().out
    assert plain == profiled == 0
    assert plain_out == profiled_out
    assert (tmp_path / "chaos" / "wallprof.collapsed").is_file()

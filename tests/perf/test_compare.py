"""`--compare` regression gate: tolerance edges, missing benches,
schema drift, noise flags."""

import json

import pytest

from repro.perf import (SCHEMA_VERSION, compare_documents,
                        load_bench_file, render_compare_json,
                        render_compare_text)


def doc(medians: dict, *, version=SCHEMA_VERSION, seed=0,
        scale="quick", cov=0.01, counters=None) -> dict:
    """A minimal repro-bench document with the given medians."""
    return {
        "schema": "repro-bench",
        "schemaVersion": version,
        "host": {"python": "3.x"},
        "run": {"seed": seed, "scale": scale, "repeats": 5,
                "warmup": 1},
        "benchmarks": {
            name: {
                "subsystem": "sim", "unit": "events",
                "counters": dict(counters or {"events": 100}),
                "stats": {"min_s": median, "median_s": median,
                          "mean_s": median, "cov": cov, "repeats": 5},
                "rate_per_s": 100.0 / median,
            }
            for name, median in medians.items()
        },
    }


def row(report, name):
    return next(r for r in report.rows if r.name == name)


def test_identical_documents_pass():
    base = doc({"a": 1.0, "b": 2.0})
    report = compare_documents(base, doc({"a": 1.0, "b": 2.0}),
                               tolerance_pct=10.0)
    assert report.exit_code == 0
    assert [r.status for r in report.rows] == ["ok", "ok"]


def test_injected_slowdown_fails():
    report = compare_documents(doc({"a": 1.0}), doc({"a": 1.5}),
                               tolerance_pct=10.0)
    assert report.exit_code == 1
    assert row(report, "a").status == "REGRESSION"
    assert row(report, "a").delta_pct == pytest.approx(50.0)


def test_tolerance_edge_is_inclusive():
    """delta == tolerance passes; only strictly-beyond fails.

    Binary-exact medians (1.25 = 1 + 1/4) so the delta computes to
    exactly 25.0 with no float fuzz at the edge.
    """
    at_edge = compare_documents(doc({"a": 1.0}), doc({"a": 1.25}),
                                tolerance_pct=25.0)
    assert row(at_edge, "a").status == "ok"
    assert at_edge.exit_code == 0
    past_edge = compare_documents(doc({"a": 1.0}), doc({"a": 1.2501}),
                                  tolerance_pct=25.0)
    assert row(past_edge, "a").status == "REGRESSION"
    assert past_edge.exit_code == 1


def test_speedup_reports_faster_and_passes():
    report = compare_documents(doc({"a": 1.0}), doc({"a": 0.5}),
                               tolerance_pct=10.0)
    assert row(report, "a").status == "faster"
    assert report.exit_code == 0


def test_missing_baseline_bench_fails():
    """A renamed/deleted bench silently breaks the trajectory."""
    report = compare_documents(doc({"a": 1.0, "gone": 1.0}),
                               doc({"a": 1.0}), tolerance_pct=10.0)
    assert report.exit_code == 1
    assert row(report, "gone").status == "missing"
    assert "renamed or deleted" in row(report, "gone").warnings[0]


def test_renamed_bench_is_both_missing_and_new():
    report = compare_documents(doc({"old.name": 1.0}),
                               doc({"new.name": 1.0}),
                               tolerance_pct=10.0)
    assert row(report, "old.name").status == "missing"
    assert row(report, "new.name").status == "new"
    assert report.exit_code == 1


def test_new_bench_passes():
    report = compare_documents(doc({"a": 1.0}),
                               doc({"a": 1.0, "fresh": 1.0}),
                               tolerance_pct=10.0)
    assert row(report, "fresh").status == "new"
    assert report.exit_code == 0


def test_schema_version_mismatch_fails_without_rows():
    report = compare_documents(doc({"a": 1.0}, version=0),
                               doc({"a": 9.0}), tolerance_pct=10.0)
    assert report.exit_code == 1
    assert report.rows == []
    assert "schema version mismatch" in report.errors[0]


def test_high_cov_warns_but_does_not_fail():
    report = compare_documents(doc({"a": 1.0}, cov=0.9),
                               doc({"a": 1.0}), tolerance_pct=10.0)
    assert report.exit_code == 0
    warnings = row(report, "a").warnings
    assert any("noisy: baseline" in w for w in warnings)
    assert not any("noisy: new" in w for w in warnings)


def test_counter_drift_at_equal_seed_warns_shape_drift():
    report = compare_documents(
        doc({"a": 1.0}, counters={"events": 100}),
        doc({"a": 1.0}, counters={"events": 999}),
        tolerance_pct=10.0)
    assert any("shape-drift" in w for w in row(report, "a").warnings)
    # Different seed: the counters are *expected* to differ.
    report = compare_documents(
        doc({"a": 1.0}, counters={"events": 100}),
        doc({"a": 1.0}, seed=1, counters={"events": 999}),
        tolerance_pct=10.0)
    assert not row(report, "a").warnings


def test_only_filter_skips_unselected_baseline_benches():
    """A partial --bench run must not flag the rest as missing."""
    base = doc({"a": 1.0, "b": 1.0, "c": 1.0})
    partial = doc({"a": 1.0})
    unfiltered = compare_documents(base, partial, tolerance_pct=10.0)
    assert unfiltered.exit_code == 1
    filtered = compare_documents(base, partial, tolerance_pct=10.0,
                                 only={"a"})
    assert filtered.exit_code == 0
    assert [r.name for r in filtered.rows] == ["a"]


def test_only_filter_still_fails_selected_missing_bench():
    report = compare_documents(doc({"a": 1.0, "b": 1.0}), doc({}),
                               tolerance_pct=10.0, only={"a"})
    assert report.exit_code == 1
    assert [r.name for r in report.rows] == ["a"]


def test_render_text_verdicts():
    failing = compare_documents(doc({"a": 1.0}), doc({"a": 2.0}),
                                tolerance_pct=10.0)
    text = render_compare_text(failing)
    assert "REGRESSION" in text
    assert "bench compare: FAIL (1 regression(s), 0 error(s))" in text
    passing = compare_documents(doc({"a": 1.0}), doc({"a": 1.0}),
                                tolerance_pct=10.0)
    assert "bench compare: ok" in render_compare_text(passing)


def test_render_json_is_canonical_and_carries_exit_code():
    report = compare_documents(doc({"a": 1.0}), doc({"a": 2.0}),
                               tolerance_pct=10.0)
    payload = json.loads(render_compare_json(report))
    assert payload["exit_code"] == 1
    assert payload["rows"][0]["status"] == "REGRESSION"
    assert render_compare_json(report) == json.dumps(
        payload, sort_keys=True, separators=(",", ":"))


def test_load_bench_file_rejects_foreign_json(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ValueError, match="not a repro-bench"):
        load_bench_file(str(path))
    good = tmp_path / "ok.json"
    good.write_text(json.dumps(doc({"a": 1.0})))
    assert load_bench_file(str(good))["schemaVersion"] \
        == SCHEMA_VERSION


def test_load_bench_file_rejects_empty_baseline(tmp_path):
    """A baseline with no bench entries must be refused, not compared
    against (it would pass vacuously)."""
    for benchmarks in (None, {}):
        hollow = doc({})
        hollow["benchmarks"] = benchmarks
        path = tmp_path / "BENCH_hollow.json"
        path.write_text(json.dumps(hollow))
        with pytest.raises(ValueError, match="no benchmark entries"):
            load_bench_file(str(path))


def test_load_bench_file_accepts_populated_baseline(tmp_path):
    path = tmp_path / "BENCH_ok.json"
    path.write_text(json.dumps(doc({"a": 1.0})))
    assert load_bench_file(str(path))["benchmarks"]["a"]

"""Harness: stats math, determinism enforcement, BENCH document
byte-stability outside the timing/host fields."""

import json

import pytest

from repro.perf import (SCHEMA_VERSION, BenchStats, bench_document,
                        render_suite_text, run_suite, stable_view,
                        write_bench_file)
from repro.perf.harness import run_bench
from repro.perf.registry import BenchCase, BenchSpec, resolve


class CountingCase(BenchCase):
    """Deterministic toy bench: counters depend only on (seed, scale)."""

    def __init__(self, seed, scale, flaky=False):
        self.seed, self.scale = seed, scale
        self.flaky = flaky
        self.repeat = 0

    def prepare(self):
        self.repeat += 1
        def run():
            total = sum(range(2000))
            events = self.seed * 100 + len(self.scale)
            if self.flaky:
                events += self.repeat  # drifts every repeat
            return {"events": events, "total": total}
        return run


def spec(name="toy.count", flaky=False):
    return BenchSpec(name=name, subsystem="sim", unit="events",
                     description="toy",
                     factory=lambda seed, scale:
                     CountingCase(seed, scale, flaky=flaky))


def test_stats_median_mean_cov():
    stats = BenchStats.from_samples([4.0, 1.0, 2.0])
    assert stats.min_s == 1.0
    assert stats.median_s == 2.0
    assert stats.mean_s == pytest.approx(7.0 / 3.0)
    assert stats.cov == pytest.approx(
        (7.0 / 3.0) ** -1 * (sum((s - 7.0 / 3.0) ** 2
                                 for s in (1.0, 2.0, 4.0)) / 2) ** 0.5)
    even = BenchStats.from_samples([1.0, 2.0, 3.0, 10.0])
    assert even.median_s == 2.5
    single = BenchStats.from_samples([5.0])
    assert single.cov == 0.0 and single.repeats == 1


def test_run_bench_counters_and_rate():
    result = run_bench(spec(), seed=3, scale="quick", repeats=3,
                       warmup=1)
    assert result.counters == {"events": 305, "total": 1999000}
    assert result.stats.repeats == 3
    assert result.rate_per_s == pytest.approx(
        305 / result.stats.median_s)


def test_run_bench_rejects_nondeterministic_counters():
    with pytest.raises(RuntimeError, match="not seed-deterministic"):
        run_bench(spec(flaky=True), seed=0, scale="quick", repeats=2,
                  warmup=0)


def test_run_bench_validates_arguments():
    with pytest.raises(ValueError, match="unknown scale"):
        run_bench(spec(), seed=0, scale="huge", repeats=1, warmup=0)
    with pytest.raises(ValueError, match="repeats must be"):
        run_bench(spec(), seed=0, scale="quick", repeats=0, warmup=0)


def suite(seed=0):
    return run_suite([spec("b.two"), spec("a.one")], seed=seed,
                     scale="quick", repeats=2, warmup=0)


def test_run_suite_orders_by_name():
    assert [r.name for r in suite().results] == ["a.one", "b.two"]


def test_document_schema_and_stable_view():
    document = bench_document(suite())
    assert document["schema"] == "repro-bench"
    assert document["schemaVersion"] == SCHEMA_VERSION
    assert set(document["host"]) == {"python", "implementation",
                                     "system", "machine", "cpu_count",
                                     "date"}
    bench = document["benchmarks"]["a.one"]
    assert set(bench) == {"subsystem", "unit", "counters", "stats",
                          "rate_per_s"}
    view = stable_view(document)
    assert "host" not in view
    assert "stats" not in view["benchmarks"]["a.one"]
    assert "rate_per_s" not in view["benchmarks"]["a.one"]
    assert view["benchmarks"]["a.one"]["counters"] \
        == bench["counters"]


def test_same_seed_documents_agree_byte_for_byte():
    views = [json.dumps(stable_view(bench_document(suite(seed=9))),
                        sort_keys=True)
             for _ in range(2)]
    assert views[0] == views[1]
    other_seed = json.dumps(
        stable_view(bench_document(suite(seed=10))), sort_keys=True)
    assert views[0] != other_seed


def test_write_bench_file_is_canonical(tmp_path):
    document = bench_document(suite())
    path = tmp_path / "BENCH_test.json"
    write_bench_file(str(path), document)
    text = path.read_text()
    assert text.endswith("\n")
    assert text == json.dumps(document, sort_keys=True, indent=2) + "\n"


def test_render_suite_text_flags_noise():
    result = suite()
    text = render_suite_text(result, cov_limit=0.35)
    assert "a.one" in text and "b.two" in text
    assert "events/s" in text
    forced = render_suite_text(result, cov_limit=-1.0)
    assert "(noisy)" in forced


def test_committed_baseline_matches_current_registry(tmp_path):
    """The committed BENCH file's stable view must be reproducible by
    the current code at the same seed/scale — the acceptance gate."""
    import pathlib
    repo = pathlib.Path(__file__).resolve().parent.parent.parent
    baselines = sorted(repo.glob("BENCH_*.json"))
    assert baselines, "no committed BENCH_<date>.json baseline"
    committed = json.loads(baselines[-1].read_text())
    run = committed["run"]
    fresh = run_suite(resolve(None), seed=run["seed"],
                      scale=run["scale"], repeats=1,
                      warmup=0)
    fresh_doc = bench_document(fresh)
    fresh_doc["run"] = dict(run)  # repeats differ by design here
    assert json.dumps(stable_view(fresh_doc), sort_keys=True) \
        == json.dumps(stable_view(committed), sort_keys=True)


def test_write_bench_file_refuses_empty_document(tmp_path):
    """An empty baseline would make every later --compare vacuous."""
    document = bench_document(suite())
    path = tmp_path / "BENCH_empty.json"
    for benchmarks in (None, {}):
        hollow = dict(document)
        hollow["benchmarks"] = benchmarks
        with pytest.raises(ValueError, match="no benchmark entries"):
            write_bench_file(str(path), hollow)
    assert not path.exists()

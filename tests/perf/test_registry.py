"""Registry + registered benches: resolution, determinism at quick
scale."""

import pytest

import repro.perf  # noqa: F401  (registers the built-in benches)
from repro.perf.harness import run_bench
from repro.perf.registry import (SCALES, all_benchmarks, get_benchmark,
                                 register, resolve)

EXPECTED = {"kernel.events", "sql.parse", "db.query_mix",
            "repl.binlog", "e2e.cell"}


def test_builtin_suite_is_registered():
    names = {spec.name for spec in all_benchmarks()}
    assert EXPECTED <= names
    assert [spec.name for spec in all_benchmarks()] \
        == sorted(spec.name for spec in all_benchmarks())


def test_scales_are_ordered_multipliers():
    assert SCALES["quick"] < SCALES["standard"] < SCALES["full"]


def test_get_unknown_benchmark_lists_known():
    with pytest.raises(KeyError, match="unknown benchmark 'nope'"):
        get_benchmark("nope")


def test_resolve_exact_family_and_unknown():
    assert [s.name for s in resolve(["sql.parse"])] == ["sql.parse"]
    family = [s.name for s in resolve(["kernel"])]
    assert family == ["kernel.events"]
    merged = {s.name for s in resolve(["sql.parse", "kernel"])}
    assert merged == {"sql.parse", "kernel.events"}
    assert resolve(None) == all_benchmarks()
    with pytest.raises(KeyError, match="unknown benchmark"):
        resolve(["sql.parse", "bogus"])


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register("sql.parse", "sql", "statements", "dup")(object)


@pytest.mark.parametrize("name", sorted(EXPECTED - {"e2e.cell"}))
def test_each_micro_bench_is_repeat_deterministic(name):
    """Two repeats at quick scale must agree on every counter (the
    harness raises otherwise) and two seeds must not."""
    spec = get_benchmark(name)
    result = run_bench(spec, seed=0, scale="quick", repeats=2,
                       warmup=0)
    assert result.counters
    assert all(isinstance(v, (int, float))
               for v in result.counters.values())
    other = run_bench(spec, seed=1, scale="quick", repeats=1,
                      warmup=0)
    assert other.counters != result.counters


def test_e2e_cell_runs_and_counts_operations():
    result = run_bench(get_benchmark("e2e.cell"), seed=0,
                       scale="quick", repeats=1, warmup=0)
    assert result.unit == "operations"
    assert result.counters["operations"] > 0
    assert result.counters["slaves"] == 1


def test_resolve_family_prefix_with_trailing_dot():
    # The docs show "--bench sql." — both spellings must work.
    dotted = {spec.name for spec in resolve(["sql."])}
    bare = {spec.name for spec in resolve(["sql"])}
    assert dotted == bare
    assert {"sql.parse", "sql.parse_cold"} <= dotted

"""benchmarks/conftest.py publish(): the canonical-JSON rider next
to each rendered .txt table."""

import importlib.util
import json
import pathlib

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent.parent \
    / "benchmarks"

spec = importlib.util.spec_from_file_location(
    "bench_conftest", BENCHMARKS / "conftest.py")
bench_conftest = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_conftest)

TABLE = """fig2 same-zone throughput (ops/s)
users 1-slave 2-slave 4-slave
50 6.1 6.4 6.2
100 12.0 12.6 n/a
"""


def test_table_as_json_parses_title_header_rows():
    rider = json.loads(
        bench_conftest.table_as_json("fig2_same_zone", TABLE))
    assert rider["name"] == "fig2_same_zone"
    assert rider["title"] == "fig2 same-zone throughput (ops/s)"
    assert rider["header"] == ["users", "1-slave", "2-slave",
                               "4-slave"]
    assert rider["rows"] == [[50, 6.1, 6.4, 6.2],
                             [100, 12.0, 12.6, "n/a"]]


def test_table_as_json_is_canonical():
    text = bench_conftest.table_as_json("t", TABLE)
    assert text == json.dumps(json.loads(text), sort_keys=True,
                              separators=(",", ":"))


def test_table_as_json_degrades_on_blurbs():
    rider = json.loads(
        bench_conftest.table_as_json("note", "just a sentence\n"))
    assert rider["title"] == "just a sentence"
    assert rider["header"] == []
    assert rider["rows"] == []
    empty = json.loads(bench_conftest.table_as_json("empty", ""))
    assert empty["title"] == ""


def test_publish_writes_txt_and_json_rider(tmp_path):
    bench_conftest.publish(tmp_path, "fig2_same_zone", TABLE.strip())
    assert (tmp_path / "fig2_same_zone.txt").read_text() \
        == TABLE.strip() + "\n"
    rider_text = (tmp_path / "fig2_same_zone.json").read_text()
    assert rider_text.endswith("\n")
    rider = json.loads(rider_text)
    assert rider["rows"][0][0] == 50

"""WallProfiler: attribution share, subsystem mapping, collapsed
stacks, sim-kernel integration."""

import os

import pytest

from repro.perf import WallProfiler, render_wallprof
from repro.perf.wallprof import _subsystem_of
from repro.sim.kernel import Simulator


def sim_spin():
    """A little real repro work: the event loop under the profiler."""
    sim = Simulator()

    def ticker():
        for _ in range(200):
            yield sim.timeout(0.01)

    for _ in range(5):
        sim.process(ticker())
    sim.run()


def test_subsystem_mapping():
    sep = os.sep
    assert _subsystem_of(f"{sep}x{sep}repro{sep}sim{sep}kernel.py") \
        == "sim"
    assert _subsystem_of(
        f"{sep}x{sep}repro{sep}db{sep}engine.py") == "db"
    assert _subsystem_of(f"{sep}x{sep}repro{sep}cli.py") == "cli"
    assert _subsystem_of(
        f"{sep}lib{sep}site-packages{sep}numpy{sep}core.py") == "numpy"
    assert _subsystem_of("<string>") == "stdlib"
    assert _subsystem_of(f"{sep}somewhere{sep}else{sep}thing.py") \
        == "other"
    import sysconfig
    stdlib = sysconfig.get_paths()["stdlib"]
    assert _subsystem_of(os.path.join(stdlib, "json",
                                      "__init__.py")) == "stdlib"


def test_attribution_share_is_at_least_95_percent():
    """The acceptance bar: >=95% of profiled wall time lands in named
    subsystems when profiling a real registered bench (a local test
    generator would charge its own frames to ``other``)."""
    import repro.perf  # noqa: F401  (registers the benches)
    from repro.perf.harness import run_bench
    from repro.perf.registry import get_benchmark

    profiler = WallProfiler()
    run_bench(get_benchmark("kernel.events"), seed=0, scale="quick",
              repeats=1, warmup=0, profiler=profiler)
    assert profiler.wall_time > 0.0
    assert profiler.attributed_share() >= 0.95
    shares = {row["subsystem"]: row["share"]
              for row in profiler.rows()}
    assert "sim" in shares
    assert sum(shares.values()) == pytest.approx(1.0)


def test_rows_sum_exactly_to_wall_time():
    profiler = WallProfiler()
    with profiler:
        sim_spin()
    assert sum(row["wall_s"] for row in profiler.rows()) \
        == pytest.approx(profiler.wall_time)


def test_collapsed_stack_format():
    profiler = WallProfiler()
    with profiler:
        sim_spin()
    lines = profiler.collapsed().splitlines()
    assert lines
    for line in lines:
        frames, micros = line.rsplit(" ", 1)
        assert int(micros) > 0
        assert frames
    assert lines == sorted(lines)
    assert any("sim.kernel:" in line for line in lines)


def test_start_twice_raises_and_stop_is_idempotent():
    profiler = WallProfiler()
    profiler.start()
    with pytest.raises(RuntimeError, match="already running"):
        profiler.start()
    profiler.stop()
    profiler.stop()  # no-op


def test_resumable_accumulation():
    """run_suite shares one profiler across benches: start/stop must
    accumulate, not reset."""
    profiler = WallProfiler()
    with profiler:
        sim_spin()
    first = profiler.wall_time
    with profiler:
        sim_spin()
    assert profiler.wall_time > first


def test_render_and_snapshot():
    profiler = WallProfiler()
    with profiler:
        sim_spin()
    text = render_wallprof(profiler)
    assert "wall-clock profile" in text
    assert "attributed" in text
    snapshot = profiler.snapshot()
    assert snapshot["wall_s"] == pytest.approx(profiler.wall_time)
    assert 0.0 <= snapshot["attributed_share"] <= 1.0
    assert snapshot["rows"] == profiler.rows()

"""Shared fixtures for replication tests."""

import pytest

from repro.cloud import Cloud, DEFAULT_CATALOG, MASTER_PLACEMENT
from repro.replication import ReplicationManager
from repro.sim import RandomStreams, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cloud(sim):
    return Cloud(sim, RandomStreams(123))


@pytest.fixture
def manager(sim, cloud):
    # NTP daemons run forever and would keep a bare ``sim.run()`` from
    # terminating; tests that exercise NTP construct their own manager
    # and run with an explicit horizon.
    return ReplicationManager(sim, cloud, ntp_period=None)


@pytest.fixture
def master(manager):
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE items (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, grp INTEGER, v INTEGER)")
    master.admin("CREATE INDEX idx_grp ON items (grp)")
    return master


EU_WEST = DEFAULT_CATALOG.placement("eu-west-1a")
US_EAST_B = DEFAULT_CATALOG.placement("us-east-1b")


def run_process(sim, generator, until=None):
    """Run a generator to completion and return its value."""
    process = sim.process(generator)
    sim.run(until=until)
    assert process.triggered, "process did not finish"
    return process.value

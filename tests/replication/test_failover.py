"""Master-failover tests."""

import pytest

from repro.cloud import MASTER_PLACEMENT
from repro.db import DatabaseError
from repro.replication import best_candidate, fail_master, promote
from tests.replication.conftest import EU_WEST, run_process


def drive(sim, master, count, spacing=0.05):
    def writer(sim, master):
        for i in range(count):
            try:
                yield from master.perform(
                    f"INSERT INTO items (grp, v) VALUES ({i % 3}, {i})")
            except DatabaseError:
                return  # master died mid-stream; the client gives up
            yield sim.timeout(spacing)
    return sim.process(writer(sim, master))


def test_fail_master_rejects_clients(sim, manager, master):
    manager.add_slave(MASTER_PLACEMENT)
    fail_master(manager)

    def client(master):
        yield from master.perform("SELECT 1")

    process = sim.process(client(master))
    with pytest.raises(DatabaseError):
        sim.run()


def test_fail_master_requires_master(sim, manager):
    with pytest.raises(DatabaseError):
        fail_master(manager)


def test_best_candidate_is_most_up_to_date(sim, manager, master):
    near = manager.add_slave(MASTER_PLACEMENT, name="near")
    far = manager.add_slave(EU_WEST, name="far")
    drive(sim, master, 10, spacing=0.0)
    sim.run(until=0.08)  # near has received; far's events still in flight
    assert near.received_position > far.received_position
    assert best_candidate(manager) is near


def test_best_candidate_requires_slaves(sim, manager, master):
    with pytest.raises(DatabaseError):
        best_candidate(manager)


def test_promote_refuses_online_master(sim, manager, master):
    manager.add_slave(MASTER_PLACEMENT)

    def attempt(manager):
        yield from promote(manager)

    process = sim.process(attempt(manager))
    with pytest.raises(DatabaseError):
        sim.run()


def test_promotion_preserves_received_writes(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    drive(sim, master, 20, spacing=0.05)
    sim.run()
    reference = manager.data_checksum(master)
    fail_master(manager)

    def run_promote(manager):
        new_master = yield from promote(manager)
        return new_master

    new_master = run_process(sim, run_promote(manager))
    assert manager.master is new_master
    assert manager.data_checksum(new_master) == reference
    assert new_master.instance is slave.instance
    assert manager.slaves == []


def test_new_master_serves_writes(sim, manager, master):
    manager.add_slave(MASTER_PLACEMENT)
    manager.add_slave(MASTER_PLACEMENT)
    drive(sim, master, 5, spacing=0.02)
    sim.run()
    fail_master(manager)

    def failover_and_write(manager):
        new_master = yield from promote(manager)
        yield from new_master.perform(
            "INSERT INTO items (grp, v) VALUES (9, 999)")
        return new_master

    new_master = run_process(sim, failover_and_write(manager))
    assert new_master.admin(
        "SELECT COUNT(*) FROM items WHERE v = 999").result.scalar() == 1
    # The surviving slave replicates from the new master.
    sim.run(until=sim.now + 5.0)
    assert manager.all_caught_up()
    assert manager.verify_consistency()


def test_survivors_resync_from_new_master(sim, manager, master):
    near = manager.add_slave(MASTER_PLACEMENT, name="near")
    far = manager.add_slave(EU_WEST, name="far")
    drive(sim, master, 15, spacing=0.05)
    sim.run()
    fail_master(manager)

    def failover(manager):
        yield from promote(manager)

    run_process(sim, failover(manager))
    assert len(manager.slaves) == 1
    survivor = manager.slaves[0]
    assert survivor.name == "far"
    assert manager.data_checksum(survivor) == \
        manager.data_checksum(manager.master)


def test_async_failover_can_lose_unreplicated_writes(sim, manager, master):
    """The paper's §II data-loss caveat: writes committed on the master
    but not yet received by any slave vanish on failover."""
    slave = manager.add_slave(EU_WEST)
    drive(sim, master, 10, spacing=0.0)
    # Fail the master while the tail of the binlog is still in flight
    # across the ocean.
    sim.run(until=0.05)
    committed_on_master = master.admin(
        "SELECT COUNT(*) FROM items").result.scalar()
    dead = fail_master(manager)
    received = slave.received_position

    def failover(manager):
        new_master = yield from promote(manager)
        return new_master

    new_master = run_process(sim, failover(manager))
    surviving = new_master.admin(
        "SELECT COUNT(*) FROM items").result.scalar()
    lost = committed_on_master - surviving
    assert lost > 0
    assert dead.binlog.head_position > received


def test_promoted_master_keeps_auto_increment_continuity(sim, manager,
                                                         master):
    manager.add_slave(MASTER_PLACEMENT)
    drive(sim, master, 5, spacing=0.02)
    sim.run()
    fail_master(manager)

    def failover_and_write(manager):
        new_master = yield from promote(manager)
        result = yield from new_master.perform(
            "INSERT INTO items (grp, v) VALUES (0, 123)")
        return result.result.lastrowid

    lastrowid = run_process(sim, failover_and_write(manager))
    assert lastrowid == 6  # continues the sequence, no pk reuse


def test_proxy_repoints_after_failover(sim, manager, master):
    manager.add_slave(MASTER_PLACEMENT)
    manager.add_slave(MASTER_PLACEMENT)
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    fail_master(manager)

    def failover(manager):
        new_master = yield from promote(manager)
        return new_master

    new_master = run_process(sim, failover(manager))
    proxy.set_master(new_master)
    proxy.slaves = list(manager.slaves)
    from repro.sql import parse
    assert proxy.route(parse("INSERT INTO items (grp, v) VALUES (1, 1)")) \
        is new_master
    assert proxy.route(parse("SELECT 1")) in manager.slaves


# ---------------------------------------------------------------------------
# Regression: the drain loop in promote() yields, so everything
# validated before it is stale by the time the rebrand runs (RACE001 /
# RACE002).  promote() must re-validate after draining.
# ---------------------------------------------------------------------------

def _pause_sql_thread(slave):
    """White-box: stall the SQL thread so the relay log accumulates a
    backlog and promote() is forced into its drain loop."""
    slave._sql_thread_process.interrupt("paused")
    slave._sql_thread_process = None


def test_promote_aborts_when_candidate_dies_mid_drain(sim, manager,
                                                      master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    drive(sim, master, 10, spacing=0.01)
    sim.run(until=0.02)
    _pause_sql_thread(slave)
    sim.run(until=0.3)
    assert slave.relay_backlog > 0
    fail_master(manager)

    def attempt(manager):
        yield from promote(manager)

    sim.process(attempt(manager))

    def crash_candidate():
        yield sim.timeout(0.12)  # a couple of drain polls in
        slave.instance.crash()
        slave.online = False

    sim.process(crash_candidate())
    with pytest.raises(DatabaseError, match="failed while draining"):
        sim.run()
    # The abort left the cluster untouched: no half-promoted state.
    assert manager.master is master
    assert slave in manager.slaves


def test_promote_aborts_when_remastered_during_drain(sim, manager,
                                                     master):
    near = manager.add_slave(MASTER_PLACEMENT, name="near")
    spare = manager.add_slave(MASTER_PLACEMENT, name="spare")
    drive(sim, master, 10, spacing=0.01)
    sim.run(until=0.02)
    _pause_sql_thread(near)
    sim.run(until=0.3)
    assert near.relay_backlog > 0
    fail_master(manager)

    def slow_path(manager):
        # Deliberately picks the backlogged candidate: stuck draining.
        yield from promote(manager, candidate=near)

    def fast_path(manager):
        yield sim.timeout(0.12)
        # A competing promoter installs 'spare' while the slow path
        # is still in its drain loop (its re-sync also restarts the
        # stalled SQL thread, letting the drain finish).
        yield from promote(manager, candidate=spare)

    sim.process(slow_path(manager))
    fast = sim.process(fast_path(manager))
    with pytest.raises(DatabaseError, match="re-mastered"):
        sim.run()
    assert fast.triggered
    assert manager.master is not master

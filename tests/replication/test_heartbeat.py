"""Heartbeat plugin and replication-delay estimator tests."""

import pytest

from repro.cloud import MASTER_PLACEMENT
from repro.replication import (HEARTBEAT_TABLE, HeartbeatPlugin,
                               average_relative_delay_ms, collect_delays)
from tests.replication.conftest import EU_WEST


@pytest.fixture
def heartbeat(sim, manager, master):
    plugin = HeartbeatPlugin(sim, master, interval=1.0)
    plugin.install()
    return plugin


def test_install_creates_schema(heartbeat, master):
    assert master.admin(
        f"SELECT COUNT(*) FROM {HEARTBEAT_TABLE}").result.scalar() == 0


def test_plugin_inserts_one_row_per_interval(sim, heartbeat, master):
    heartbeat.start()
    sim.run(until=10.5)
    count = master.admin(
        f"SELECT COUNT(*) FROM {HEARTBEAT_TABLE}").result.scalar()
    assert count == 10
    assert heartbeat.inserted_at[1] == pytest.approx(1.0, abs=0.2)


def test_stop_halts_inserts(sim, heartbeat, master):
    heartbeat.start()
    sim.run(until=5.5)
    heartbeat.stop()
    sim.run(until=20.0)
    count = master.admin(
        f"SELECT COUNT(*) FROM {HEARTBEAT_TABLE}").result.scalar()
    assert count == 5


def test_bad_interval_rejected(sim, master):
    with pytest.raises(ValueError):
        HeartbeatPlugin(sim, master, interval=0.0)


def test_double_start_rejected(sim, heartbeat):
    heartbeat.start()
    with pytest.raises(RuntimeError):
        heartbeat.start()


def test_heartbeats_replicate_with_slave_local_timestamps(
        sim, manager, master, heartbeat):
    """The slave's ts column must come from the slave's own clock —
    the paper's measurement mechanism."""
    slave = manager.add_slave(EU_WEST)
    # Make the slave clock run visibly ahead so the effect is obvious.
    slave.instance.clock.step_to_error(5.0)
    heartbeat.start()
    sim.run(until=4.5)
    heartbeat.stop()
    sim.run(until=10.0)
    samples = collect_delays(heartbeat, slave)
    assert len(samples) == 4
    for sample in samples:
        # ~5 s clock skew plus ~0.17 s propagation
        assert 4.9 < sample.delay_ms / 1000.0 < 5.5


def test_collect_delays_windowing(sim, manager, master, heartbeat):
    slave = manager.add_slave(MASTER_PLACEMENT)
    heartbeat.start()
    sim.run(until=10.5)
    heartbeat.stop()
    sim.run(until=12.0)
    all_samples = collect_delays(heartbeat, slave)
    windowed = collect_delays(heartbeat, slave, window_start=3.0,
                              window_end=7.0)
    assert len(all_samples) == 10
    assert len(windowed) == 4
    assert all(3.0 <= s.inserted_simtime < 7.0 for s in windowed)


def test_unapplied_heartbeats_are_censored(sim, manager, master, heartbeat):
    slave = manager.add_slave(EU_WEST)
    heartbeat.start()
    sim.run(until=5.0)
    # Advance to just past the *next* insert: its ~173 ms flight to
    # eu-west means it cannot have been applied yet.
    count_before = len(heartbeat.inserted_at)
    while len(heartbeat.inserted_at) == count_before:
        sim.step()
    sim.run(until=sim.now + 0.05)
    samples = collect_delays(heartbeat, slave)
    assert len(samples) < len(heartbeat.inserted_at)


def test_average_relative_delay_cancels_clock_skew(sim, manager, master,
                                                   heartbeat):
    slave = manager.add_slave(MASTER_PLACEMENT)
    skew = 0.25  # constant 250 ms skew
    slave.instance.clock.step_to_error(skew)
    master.instance.clock.step_to_error(0.0)
    heartbeat.start()
    sim.run(until=30.5)
    heartbeat.stop()
    sim.run(until=32.0)
    samples = collect_delays(heartbeat, slave)
    baseline = samples[:15]
    loaded = samples[15:]
    relative = average_relative_delay_ms(loaded, baseline)
    # No load in either window: the relative delay must be ~0 even
    # though raw delays carry the 250 ms skew.
    raw = sum(s.delay_ms for s in samples) / len(samples)
    assert raw > 200.0
    assert abs(relative) < 5.0


def test_trimming_discards_outliers():
    from repro.replication import HeartbeatSample

    def sample(delay_s):
        return HeartbeatSample(1, 0.0, delay_s, 0.0)

    baseline = [sample(0.001)] * 20
    loaded = [sample(0.002)] * 19 + [sample(9.0)]  # one network spike
    relative = average_relative_delay_ms(loaded, baseline)
    assert relative == pytest.approx(1.0, abs=0.2)


# ------------------------------------------------- estimator edge cases
def test_empty_baseline_raises():
    """No baseline window means no skew reference — the estimator must
    refuse, not silently report a skew-contaminated number."""
    from repro.replication import HeartbeatSample
    loaded = [HeartbeatSample(1, 0.0, 0.002, 0.0)]
    with pytest.raises(ValueError, match="no samples"):
        average_relative_delay_ms(loaded, [])
    with pytest.raises(ValueError, match="no samples"):
        average_relative_delay_ms([], loaded)


def test_single_sample_windows():
    """One heartbeat per window: the 5 % trim floors to zero cut."""
    from repro.replication import HeartbeatSample
    loaded = [HeartbeatSample(2, 10.0, 10.007, 10.0)]
    baseline = [HeartbeatSample(1, 0.0, 0.002, 0.0)]
    relative = average_relative_delay_ms(loaded, baseline)
    assert relative == pytest.approx(5.0)


def test_estimator_with_ntp_disabled(sim, cloud):
    """Without NTP, unchecked drift leaks into the relative delay —
    exactly the paper's Fig. 4 sync-once failure mode.  The estimator
    still computes (it cancels only the *mean* baseline skew)."""
    from repro.cloud import MASTER_PLACEMENT
    from repro.replication import ReplicationManager
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    plugin = HeartbeatPlugin(sim, master, interval=1.0)
    plugin.install()
    slave = manager.add_slave(MASTER_PLACEMENT)
    # 100 ms/s of relative drift, far beyond anything NTP would allow.
    slave.instance.clock.drift_rate = 0.1
    plugin.start()
    sim.run(until=20.5)
    plugin.stop()
    sim.run(until=22.0)
    samples = collect_delays(plugin, slave)
    baseline = [s for s in samples if s.inserted_simtime < 10.0]
    loaded = [s for s in samples if s.inserted_simtime >= 10.0]
    relative = average_relative_delay_ms(loaded, baseline)
    # ~10 s between window midpoints at 100 ms/s drift ≈ 1 s apparent
    # delay with *no* load at all.
    assert relative > 500.0


# ------------------------------------------------- binlog position tags
def test_positions_recorded_for_every_heartbeat(sim, heartbeat, master):
    heartbeat.start()
    sim.run(until=5.5)
    heartbeat.stop()
    assert sorted(heartbeat.positions) == [1, 2, 3, 4, 5]
    positions = [heartbeat.positions[i] for i in sorted(heartbeat.positions)]
    assert positions == sorted(positions)
    statements = {event.position: event.statement
                  for event in master.binlog.events}
    for heartbeat_id, position in heartbeat.positions.items():
        assert f"VALUES ({heartbeat_id}, " in statements[position]


def test_positions_survive_interleaved_commits(sim, heartbeat, master):
    """Concurrent writers commit between the heartbeat's append and
    its perform() return; the scan must still find the right event."""
    def writer(sim, master):
        for i in range(200):
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES (1, {i})")

    sim.process(writer(sim, master))
    heartbeat.start()
    sim.run(until=10.5)
    heartbeat.stop()
    statements = {event.position: event.statement
                  for event in master.binlog.events}
    # The last heartbeat may still be mid-perform at the horizon (CPU
    # contention with the writer); every *completed* one is tagged.
    assert len(heartbeat.positions) >= 9
    for heartbeat_id, position in heartbeat.positions.items():
        assert f"VALUES ({heartbeat_id}, " in statements[position]


def test_heartbeat_instants_emitted_when_traced(sim, manager, master):
    from repro.obs import Tracer
    sim.tracer = Tracer(sim)
    plugin = HeartbeatPlugin(sim, master, interval=1.0)
    plugin.install()
    plugin.start()
    sim.run(until=3.5)
    plugin.stop()
    instants = [s for s in sim.tracer.spans
                if s.name == "repl.heartbeat"]
    assert len(instants) == 3
    for span in instants:
        assert span.attributes["position"] == \
            plugin.positions[span.attributes["hb_id"]]
        assert span.attributes["inserted"] == \
            plugin.inserted_at[span.attributes["hb_id"]]

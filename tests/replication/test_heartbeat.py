"""Heartbeat plugin and replication-delay estimator tests."""

import pytest

from repro.cloud import MASTER_PLACEMENT
from repro.replication import (HEARTBEAT_TABLE, HeartbeatPlugin,
                               average_relative_delay_ms, collect_delays)
from tests.replication.conftest import EU_WEST


@pytest.fixture
def heartbeat(sim, manager, master):
    plugin = HeartbeatPlugin(sim, master, interval=1.0)
    plugin.install()
    return plugin


def test_install_creates_schema(heartbeat, master):
    assert master.admin(
        f"SELECT COUNT(*) FROM {HEARTBEAT_TABLE}").result.scalar() == 0


def test_plugin_inserts_one_row_per_interval(sim, heartbeat, master):
    heartbeat.start()
    sim.run(until=10.5)
    count = master.admin(
        f"SELECT COUNT(*) FROM {HEARTBEAT_TABLE}").result.scalar()
    assert count == 10
    assert heartbeat.inserted_at[1] == pytest.approx(1.0, abs=0.2)


def test_stop_halts_inserts(sim, heartbeat, master):
    heartbeat.start()
    sim.run(until=5.5)
    heartbeat.stop()
    sim.run(until=20.0)
    count = master.admin(
        f"SELECT COUNT(*) FROM {HEARTBEAT_TABLE}").result.scalar()
    assert count == 5


def test_bad_interval_rejected(sim, master):
    with pytest.raises(ValueError):
        HeartbeatPlugin(sim, master, interval=0.0)


def test_double_start_rejected(sim, heartbeat):
    heartbeat.start()
    with pytest.raises(RuntimeError):
        heartbeat.start()


def test_heartbeats_replicate_with_slave_local_timestamps(
        sim, manager, master, heartbeat):
    """The slave's ts column must come from the slave's own clock —
    the paper's measurement mechanism."""
    slave = manager.add_slave(EU_WEST)
    # Make the slave clock run visibly ahead so the effect is obvious.
    slave.instance.clock.step_to_error(5.0)
    heartbeat.start()
    sim.run(until=4.5)
    heartbeat.stop()
    sim.run(until=10.0)
    samples = collect_delays(heartbeat, slave)
    assert len(samples) == 4
    for sample in samples:
        # ~5 s clock skew plus ~0.17 s propagation
        assert 4.9 < sample.delay_ms / 1000.0 < 5.5


def test_collect_delays_windowing(sim, manager, master, heartbeat):
    slave = manager.add_slave(MASTER_PLACEMENT)
    heartbeat.start()
    sim.run(until=10.5)
    heartbeat.stop()
    sim.run(until=12.0)
    all_samples = collect_delays(heartbeat, slave)
    windowed = collect_delays(heartbeat, slave, window_start=3.0,
                              window_end=7.0)
    assert len(all_samples) == 10
    assert len(windowed) == 4
    assert all(3.0 <= s.inserted_simtime < 7.0 for s in windowed)


def test_unapplied_heartbeats_are_censored(sim, manager, master, heartbeat):
    slave = manager.add_slave(EU_WEST)
    heartbeat.start()
    sim.run(until=5.0)
    # Advance to just past the *next* insert: its ~173 ms flight to
    # eu-west means it cannot have been applied yet.
    count_before = len(heartbeat.inserted_at)
    while len(heartbeat.inserted_at) == count_before:
        sim.step()
    sim.run(until=sim.now + 0.05)
    samples = collect_delays(heartbeat, slave)
    assert len(samples) < len(heartbeat.inserted_at)


def test_average_relative_delay_cancels_clock_skew(sim, manager, master,
                                                   heartbeat):
    slave = manager.add_slave(MASTER_PLACEMENT)
    skew = 0.25  # constant 250 ms skew
    slave.instance.clock.step_to_error(skew)
    master.instance.clock.step_to_error(0.0)
    heartbeat.start()
    sim.run(until=30.5)
    heartbeat.stop()
    sim.run(until=32.0)
    samples = collect_delays(heartbeat, slave)
    baseline = samples[:15]
    loaded = samples[15:]
    relative = average_relative_delay_ms(loaded, baseline)
    # No load in either window: the relative delay must be ~0 even
    # though raw delays carry the 250 ms skew.
    raw = sum(s.delay_ms for s in samples) / len(samples)
    assert raw > 200.0
    assert abs(relative) < 5.0


def test_trimming_discards_outliers():
    from repro.replication import HeartbeatSample

    def sample(delay_s):
        return HeartbeatSample(1, 0.0, delay_s, 0.0)

    baseline = [sample(0.001)] * 20
    loaded = [sample(0.002)] * 19 + [sample(9.0)]  # one network spike
    relative = average_relative_delay_ms(loaded, baseline)
    assert relative == pytest.approx(1.0, abs=0.2)

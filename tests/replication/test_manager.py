"""ReplicationManager and semi-sync extension tests."""

import pytest

from repro.cloud import LARGE, MASTER_PLACEMENT, SMALL
from repro.replication import ReplicationManager
from tests.replication.conftest import EU_WEST, run_process


def test_create_master_defaults(sim, manager):
    master = manager.create_master(MASTER_PLACEMENT)
    assert master.instance.itype is SMALL
    assert master.placement == MASTER_PLACEMENT
    assert "cloudstone" in master.engine.databases


def test_single_master_enforced(sim, manager):
    manager.create_master(MASTER_PLACEMENT)
    with pytest.raises(RuntimeError):
        manager.create_master(MASTER_PLACEMENT)


def test_add_slave_requires_master(sim, manager):
    with pytest.raises(RuntimeError):
        manager.add_slave(MASTER_PLACEMENT)


def test_slave_naming_and_sizes(sim, manager, master):
    s1 = manager.add_slave(MASTER_PLACEMENT)
    s2 = manager.add_slave(EU_WEST, itype=LARGE, name="big")
    assert s1.name == "slave-1"
    assert s2.name == "big"
    assert s2.instance.itype is LARGE


def test_ntp_started_on_all_instances(sim, cloud):
    manager = ReplicationManager(sim, cloud, ntp_period=1.0)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE items (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, grp INTEGER, v INTEGER)")
    slave = manager.add_slave(MASTER_PLACEMENT)
    master.instance.clock.step_to_error(0.5)
    slave.instance.clock.step_to_error(-0.5)
    sim.run(until=3.0)
    # Aggressive NTP should have pulled both clocks close to true time.
    assert abs(master.instance.clock.error()) < 0.05
    assert abs(slave.instance.clock.error()) < 0.05


def test_ntp_disabled(sim, cloud):
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    master.instance.clock.step_to_error(0.5)
    sim.run(until=5.0)
    assert master.instance.clock.error() == pytest.approx(0.5, abs=0.01)


def test_snapshot_includes_preloaded_data(sim, manager, master):
    master.admin("INSERT INTO items (grp, v) VALUES (1, 10), (2, 20)")
    slave = manager.add_slave(MASTER_PLACEMENT)
    assert slave.admin("SELECT COUNT(*) FROM items").result.scalar() == 2


def test_wait_until_caught_up_timeout(sim, manager, master):
    slave = manager.add_slave(EU_WEST)

    def writer(master):
        yield from master.perform("INSERT INTO items (grp, v) VALUES (0, 1)")

    sim.process(writer(master))
    sim.run(until=0.001)  # let the write reach the binlog

    def check(manager):
        ok = yield from manager.wait_until_caught_up(timeout=0.01)
        return ok

    assert run_process(sim, check(manager), until=0.1) is False
    sim.run()
    assert manager.all_caught_up()


def test_verify_consistency_detects_divergence(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    master.admin("INSERT INTO items (grp, v) VALUES (0, 1)")  # not binlogged
    assert not manager.verify_consistency()


def test_heartbeat_table_excluded_from_consistency(sim, manager, master):
    from repro.replication import HeartbeatPlugin
    plugin = HeartbeatPlugin(sim, master, interval=0.5)
    plugin.install()
    slave = manager.add_slave(MASTER_PLACEMENT)
    slave.instance.clock.step_to_error(1.0)  # make ts values diverge
    plugin.start()
    sim.run(until=5.0)
    plugin.stop()
    sim.run(until=6.0)
    assert manager.all_caught_up()
    # Raw engine checksums differ (heartbeat ts), data checksums agree.
    assert master.engine.checksum() != slave.engine.checksum()
    assert manager.verify_consistency()


def test_remove_slave_terminates_instance(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    manager.remove_slave(slave)
    assert not slave.instance.running
    assert slave.instance.name not in manager.cloud.instances


def test_elastic_add_remove_cycle(sim, manager, master):
    """Grow and shrink the pool under write load; data stays correct."""
    def writer(sim, master):
        for i in range(30):
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES ({i % 3}, {i})")
            yield sim.timeout(0.2)

    sim.process(writer(sim, master))
    sim.run(until=1.0)
    s1 = manager.add_slave(MASTER_PLACEMENT)
    sim.run(until=3.0)
    s2 = manager.add_slave(EU_WEST)
    sim.run(until=5.0)
    manager.remove_slave(s1)
    sim.run()
    assert manager.all_caught_up()
    assert manager.verify_consistency()
    assert s2.admin("SELECT COUNT(*) FROM items").result.scalar() == 30


# ----------------------------------------------------------- semi-sync
def test_semi_sync_blocks_until_slave_receipt(sim, cloud):
    manager = ReplicationManager(sim, cloud, semi_sync=True,
                                 ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE items (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, grp INTEGER, v INTEGER)")
    manager.add_slave(EU_WEST)

    def writer(sim, master):
        start = sim.now
        yield from master.perform("INSERT INTO items (grp, v) VALUES (0, 1)")
        return sim.now - start

    elapsed = run_process(sim, writer(sim, master))
    # Must include a full round trip to eu-west (~0.35 s), far more
    # than the asynchronous write service time (~0.02 s).
    assert elapsed > 0.3


def test_async_write_does_not_wait_for_slaves(sim, manager, master):
    manager.add_slave(EU_WEST)

    def writer(sim, master):
        start = sim.now
        yield from master.perform("INSERT INTO items (grp, v) VALUES (0, 1)")
        return sim.now - start

    elapsed = run_process(sim, writer(sim, master))
    assert elapsed < 0.1


def test_semi_sync_without_slaves_does_not_block(sim, cloud):
    manager = ReplicationManager(sim, cloud, semi_sync=True,
                                 ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT)")

    def writer(master):
        yield from master.perform("INSERT INTO t (id) VALUES (1)")
        return True

    assert run_process(sim, writer(master), until=5.0) is True

"""Master/slave replication pipeline tests."""

import pytest

from repro.cloud import MASTER_PLACEMENT
from repro.replication import OrderedChannel
from tests.replication.conftest import EU_WEST, US_EAST_B


def drive_writes(sim, master, count, spacing=0.1):
    def writer(sim, master):
        for i in range(count):
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES ({i % 3}, {i})")
            yield sim.timeout(spacing)
    return sim.process(writer(sim, master))


def test_writes_reach_binlog(sim, manager, master):
    base = master.binlog.head_position  # setup DDL is binlogged too
    drive_writes(sim, master, 5)
    sim.run()
    assert master.binlog.head_position == base + 5
    texts = [e.statement for e in master.binlog.read_from(base)]
    assert all(t.startswith("INSERT INTO items") for t in texts)


def test_setup_ddl_is_binlogged(sim, manager, master):
    """MySQL binlogs DDL; the admin path must too, so late-attaching
    slaves stay consistent."""
    texts = [e.statement for e in master.binlog.read_from(0)]
    assert any(t.startswith("CREATE TABLE") for t in texts)
    assert any(t.startswith("CREATE INDEX") for t in texts)


def test_slave_applies_events_in_order(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    drive_writes(sim, master, 10)
    sim.run()
    assert slave.applied_position == master.binlog.head_position
    assert slave.events_applied == 10
    rows = slave.admin("SELECT v FROM items ORDER BY id").result.rows
    assert rows == [(i,) for i in range(10)]


def test_replicas_converge_to_master_state(sim, manager, master):
    slaves = [manager.add_slave(MASTER_PLACEMENT),
              manager.add_slave(US_EAST_B),
              manager.add_slave(EU_WEST)]
    drive_writes(sim, master, 20)
    sim.run()
    assert manager.all_caught_up()
    assert manager.verify_consistency()
    for slave in slaves:
        assert manager.data_checksum(slave) == \
            manager.data_checksum(master)


def test_mid_stream_slave_attach_syncs_snapshot_plus_tail(sim, manager,
                                                          master):
    drive_writes(sim, master, 5, spacing=0.1)
    sim.run()
    late = manager.add_slave(EU_WEST, name="late")
    assert late.start_position == master.binlog.head_position
    drive_writes(sim, master, 5, spacing=0.1)
    sim.run()
    assert late.applied_position == master.binlog.head_position
    assert manager.verify_consistency()
    # The late slave must not have re-applied the first five events.
    assert late.events_applied == 5


def test_detach_slave_stops_replication(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    drive_writes(sim, master, 3)
    sim.run()
    head_at_detach = master.binlog.head_position
    manager.remove_slave(slave)
    drive_writes(sim, master, 3)
    sim.run()
    assert slave.applied_position == head_at_detach
    assert master.binlog.head_position == head_at_detach + 3
    assert manager.slaves == []


def test_attach_same_slave_twice_rejected(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    with pytest.raises(ValueError):
        master.attach_slave(slave, manager.cloud.network)


def test_detach_unknown_slave_rejected(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    manager.remove_slave(slave)
    with pytest.raises(ValueError):
        manager.remove_slave(slave)


def test_cross_region_slave_lags_by_network_latency(sim, manager, master):
    near = manager.add_slave(MASTER_PLACEMENT, name="near")
    far = manager.add_slave(EU_WEST, name="far")
    applied_at = {}
    target = master.binlog.head_position + 1

    def writer(sim, master):
        yield from master.perform("INSERT INTO items (grp, v) VALUES (0, 1)")

    def watch(sim, slave):
        while slave.applied_position < target:
            yield sim.timeout(0.001)
        applied_at[slave.name] = sim.now

    sim.process(writer(sim, master))
    sim.process(watch(sim, near))
    sim.process(watch(sim, far))
    sim.run(until=2.0)
    assert applied_at["far"] - applied_at["near"] > 0.10  # ~173ms vs ~0


def test_relay_backlog_grows_when_apply_starved(sim, manager, master):
    """Saturate the slave CPU with reads; writesets queue in the relay
    log — the mechanism behind the paper's delay blow-up."""
    slave = manager.add_slave(MASTER_PLACEMENT)
    master.admin("INSERT INTO items (grp, v) VALUES (0, 0)")
    # (admin does not binlog... use perform-driven writes below.)

    def reader(sim, slave):
        while True:
            yield from slave.perform("SELECT COUNT(*) FROM items")

    for _ in range(4):
        sim.process(reader(sim, slave))
    drive_writes(sim, master, 50, spacing=0.01)
    sim.run(until=3.0)
    assert slave.relay_backlog > 0
    assert slave.seconds_behind_master() > 0.1


def test_slave_lag_positions(sim, manager, master):
    slave = manager.add_slave(EU_WEST)
    drive_writes(sim, master, 5, spacing=0.0)
    sim.run(until=0.05)  # events still in flight to eu-west
    lags = master.slave_lag_positions()
    assert lags[slave.name] > 0
    sim.run()
    assert master.slave_lag_positions()[slave.name] == 0


# ---------------------------------------------------------------- channel
def test_ordered_channel_preserves_fifo(sim, cloud):
    inbox = []
    channel = OrderedChannel(cloud.network, MASTER_PLACEMENT, EU_WEST,
                             on_delivery=inbox.append)
    for i in range(50):
        channel.send(i)
    sim.run()
    assert inbox == list(range(50))


def test_ordered_channel_pipelines(sim, cloud):
    """Sending N messages back-to-back must NOT take N round trips."""
    inbox = []
    channel = OrderedChannel(cloud.network, MASTER_PLACEMENT, EU_WEST,
                             on_delivery=inbox.append)
    for i in range(100):
        channel.send(i)
    sim.run()
    # One-way latency is ~0.173 s; serialized delivery would need ~17 s.
    assert sim.now < 1.0
    assert len(inbox) == 100


def test_ordered_channel_counts_bytes(sim, cloud):
    channel = OrderedChannel(cloud.network, MASTER_PLACEMENT, EU_WEST,
                             on_delivery=lambda _p: None)
    before = cloud.network.bytes_sent
    channel.send("x", size_bytes=100)
    assert cloud.network.bytes_sent == before + 100
    assert channel.messages_sent == 1

"""Cluster monitor tests."""

import pytest

from repro.cloud import MASTER_PLACEMENT
from repro.replication import (ClusterMonitor, ClusterSample,
                               SlaveSample,
                               detect_pressure)


def make_sample(master_cpu=0.5, master_queue=0, slave_cpu=0.5,
                slave_queue=0, backlog=0, behind=0.0):
    slave = SlaveSample(name="s", relay_backlog=backlog,
                        cpu_queue=slave_queue,
                        cpu_utilization=slave_cpu,
                        applied_position=0, seconds_behind=behind)
    return ClusterSample(time=0.0, master_cpu_utilization=master_cpu,
                         master_cpu_queue=master_queue, binlog_head=0,
                         slaves=(slave,))


def test_monitor_validation(sim, manager, master):
    with pytest.raises(ValueError):
        ClusterMonitor(sim, manager, period=0.0)


def test_monitor_samples_on_period(sim, manager, master):
    manager.add_slave(MASTER_PLACEMENT)
    monitor = ClusterMonitor(sim, manager, period=5.0)
    monitor.start()
    sim.run(until=26.0)
    monitor.stop()
    assert len(monitor.samples) == 5
    assert monitor.latest.time == 25.0
    assert len(monitor.latest.slaves) == 1


def test_monitor_double_start_rejected(sim, manager, master):
    monitor = ClusterMonitor(sim, manager, period=5.0)
    monitor.start()
    with pytest.raises(RuntimeError):
        monitor.start()


def test_monitor_history_bounded(sim, manager, master):
    monitor = ClusterMonitor(sim, manager, period=1.0, history=10)
    monitor.start()
    sim.run(until=50.0)
    assert len(monitor.samples) == 10


def test_monitor_utilization_tracks_load(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    monitor = ClusterMonitor(sim, manager, period=10.0)
    monitor.start()

    def reader(sim, slave):
        while sim.now < 60.0:
            yield from slave.perform("SELECT 1")

    sim.process(reader(sim, slave))
    sim.run(until=61.0)
    latest = monitor.latest
    assert latest.max_slave_utilization > 0.9
    assert latest.master_cpu_utilization < 0.1


def test_monitor_backlog_and_lag(sim, manager, master):
    slave = manager.add_slave(MASTER_PLACEMENT)
    monitor = ClusterMonitor(sim, manager, period=5.0)
    monitor.start()

    def reader(sim, slave):
        while sim.now < 40.0:
            yield from slave.perform("SELECT COUNT(*) FROM items")

    def writer(sim, master):
        for i in range(400):
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES (0, {i})")

    for _ in range(3):
        sim.process(reader(sim, slave))
    sim.process(writer(sim, master))
    sim.run(until=41.0)
    latest = monitor.latest
    assert latest.worst_backlog > 0
    assert latest.worst_seconds_behind > 0.0
    assert latest.binlog_head > 0


def test_sample_now_without_start(sim, manager, master):
    manager.add_slave(MASTER_PLACEMENT)
    monitor = ClusterMonitor(sim, manager, period=5.0)
    sample = monitor.sample_now()
    assert sample.time == 0.0
    assert monitor.latest is sample


# ------------------------------------------------------------- detection
def test_detect_no_pressure():
    signals = detect_pressure(make_sample())
    assert not signals.slaves_overloaded
    assert not signals.master_overloaded
    assert not signals.replication_lagging
    assert not signals.scale_out_helps


def test_detect_slave_cpu_pressure():
    signals = detect_pressure(make_sample(slave_cpu=0.95))
    assert signals.slaves_overloaded
    assert signals.scale_out_helps


def test_detect_replication_lag():
    signals = detect_pressure(make_sample(backlog=50))
    assert signals.replication_lagging
    assert signals.scale_out_helps
    signals = detect_pressure(make_sample(behind=5.0))
    assert signals.replication_lagging


def test_master_saturation_vetoes_scale_out():
    """The paper's limit: once the master saturates, adding slaves
    does not help."""
    signals = detect_pressure(make_sample(master_cpu=0.99,
                                          master_queue=20,
                                          slave_cpu=0.95))
    assert signals.master_overloaded
    assert not signals.scale_out_helps


def test_empty_cluster_sample_properties():
    sample = ClusterSample(time=0.0, master_cpu_utilization=0.0,
                           master_cpu_queue=0, binlog_head=0, slaves=())
    assert sample.worst_backlog == 0
    assert sample.worst_seconds_behind == 0.0
    assert sample.max_slave_utilization == 0.0


# ------------------------------------------------------ gauge publication
def test_sample_now_publishes_gauges(sim, manager, master):
    """Every sampled quantity must land in a metrics gauge — the trace
    analyzer reads utilizations and backlogs back from these."""
    from repro.obs import MetricsRegistry
    manager.add_slave(MASTER_PLACEMENT)
    slave_name = manager.slaves[0].name
    sim.metrics = MetricsRegistry(now_fn=lambda: sim.now)
    monitor = ClusterMonitor(sim, manager, period=5.0)
    monitor.start()
    sim.run(until=11.0)
    monitor.stop()
    names = {snapshot["name"] for snapshot in sim.metrics.snapshot()}
    prefix = f"slave.{slave_name}"
    assert {"master.cpu_util", "master.cpu_queue",
            "master.binlog_head", f"{prefix}.relay_backlog",
            f"{prefix}.cpu_queue", f"{prefix}.cpu_util",
            f"{prefix}.seconds_behind"} <= names
    cpu_util = sim.metrics.gauge(f"{prefix}.cpu_util").snapshot()
    # One sample per period, each with its sim-time stamp.
    assert cpu_util["times"] == [5.0, 10.0]
    assert all(0.0 <= v <= 1.0 for v in cpu_util["values"])


def test_gauges_silent_without_metrics(sim, manager, master):
    """With the null registry the monitor must not record anything."""
    manager.add_slave(MASTER_PLACEMENT)
    monitor = ClusterMonitor(sim, manager, period=5.0)
    monitor.start()
    sim.run(until=6.0)
    assert not sim.metrics.enabled
    assert len(monitor.samples) == 1

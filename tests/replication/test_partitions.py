"""Network-partition behaviour.

The paper's §II: synchronous replication risks availability because
"unreachable replicas due to network partitioning cause suspension of
synchronization", while asynchronous replication stays available and
catches up later.  These tests pin both behaviours.
"""

import pytest

from repro.cloud import Cloud, DEFAULT_CATALOG, MASTER_PLACEMENT
from repro.replication import ReplicationManager
from repro.sim import RandomStreams, Simulator
from tests.replication.conftest import run_process

EU = DEFAULT_CATALOG.placement("eu-west-1a")


def build(semi_sync=False, seed=201):
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(seed))
    manager = ReplicationManager(sim, cloud, ntp_period=None,
                                 semi_sync=semi_sync)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE t (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, v INTEGER)")
    slave = manager.add_slave(EU)
    return sim, cloud, manager, master, slave


# ---------------------------------------------------------------- network
def test_partition_validation():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(1))
    with pytest.raises(ValueError):
        cloud.network.partition("us-east-1", "us-east-1")


def test_partition_holds_and_heal_releases():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(2))
    inbox = []
    cloud.network.partition("us-east-1", "eu-west-1")
    cloud.network.send(MASTER_PLACEMENT, EU, payload="x",
                       on_delivery=inbox.append)

    def healer(sim, network):
        yield sim.timeout(10.0)
        network.heal("us-east-1", "eu-west-1")

    sim.process(healer(sim, cloud.network))
    sim.run()
    assert inbox == ["x"]
    assert sim.now > 10.0  # delivered only after heal + latency


def test_unrelated_links_unaffected():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(3))
    cloud.network.partition("us-east-1", "eu-west-1")
    ap = DEFAULT_CATALOG.placement("ap-northeast-1a")
    inbox = []
    cloud.network.send(MASTER_PLACEMENT, ap, payload="y",
                       on_delivery=inbox.append)
    sim.run()
    assert inbox == ["y"]


def test_when_healed_fires_immediately_when_up():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(4))
    ev = cloud.network.when_healed(MASTER_PLACEMENT, EU)
    assert ev.triggered


# ------------------------------------------------------------ replication
def test_async_replication_suspends_then_catches_up():
    sim, cloud, manager, master, slave = build(semi_sync=False)

    def scenario(sim):
        cloud.network.partition("us-east-1", "eu-west-1")
        for i in range(10):
            yield from master.perform(f"INSERT INTO t (v) VALUES ({i})")
        partitioned_applied = slave.applied_position
        yield sim.timeout(5.0)
        assert slave.applied_position == partitioned_applied  # suspended
        cloud.network.heal("us-east-1", "eu-west-1")
        return partitioned_applied

    applied_during = run_process(sim, scenario(sim))
    sim.run()
    assert applied_during < master.binlog.head_position
    assert manager.all_caught_up()
    assert manager.verify_consistency()


def test_async_writes_stay_available_during_partition():
    sim, cloud, manager, master, slave = build(semi_sync=False)
    cloud.network.partition("us-east-1", "eu-west-1")

    def writer(sim, master):
        start = sim.now
        yield from master.perform("INSERT INTO t (v) VALUES (1)")
        return sim.now - start

    elapsed = run_process(sim, writer(sim, master), until=5.0)
    assert elapsed < 0.1  # unaffected by the partition
    cloud.network.heal("us-east-1", "eu-west-1")
    sim.run()
    assert manager.all_caught_up()


def test_semi_sync_blocks_during_partition():
    """The §II availability hazard: a semi-sync master cannot commit
    while its only slave is unreachable."""
    sim, cloud, manager, master, slave = build(semi_sync=True)
    cloud.network.partition("us-east-1", "eu-west-1")
    finished = []

    def writer(sim, master):
        yield from master.perform("INSERT INTO t (v) VALUES (1)")
        finished.append(sim.now)

    sim.process(writer(sim, master))
    sim.run(until=30.0)
    assert finished == []  # suspended

    cloud.network.heal("us-east-1", "eu-west-1")
    sim.run(until=40.0)
    assert len(finished) == 1  # commit completed after the heal


def test_channel_preserves_order_across_partition():
    sim, cloud, manager, master, slave = build(seed=202)

    def scenario(sim):
        yield from master.perform("INSERT INTO t (v) VALUES (0)")
        cloud.network.partition("us-east-1", "eu-west-1")
        for i in range(1, 6):
            yield from master.perform(f"INSERT INTO t (v) VALUES ({i})")
        cloud.network.heal("us-east-1", "eu-west-1")
        for i in range(6, 9):
            yield from master.perform(f"INSERT INTO t (v) VALUES ({i})")

    run_process(sim, scenario(sim))
    sim.run()
    rows = slave.admin("SELECT v FROM t ORDER BY id").result.rows
    assert rows == [(i,) for i in range(9)]
    assert manager.verify_consistency()


def test_repartition_before_flush_reholds_traffic():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(5))
    from repro.replication import OrderedChannel
    inbox = []
    channel = OrderedChannel(cloud.network, MASTER_PLACEMENT, EU,
                             on_delivery=inbox.append)
    cloud.network.partition("us-east-1", "eu-west-1")
    channel.send("a")
    # Heal and immediately re-partition: the flush callback must not
    # leak the message through the second partition.
    cloud.network.heal("us-east-1", "eu-west-1")
    cloud.network.partition("us-east-1", "eu-west-1")
    sim.run(until=5.0)
    assert inbox == []
    cloud.network.heal("us-east-1", "eu-west-1")
    sim.run()
    assert inbox == ["a"]

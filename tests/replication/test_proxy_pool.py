"""Proxy routing and connection pool tests."""

import pytest

from repro.cloud import MASTER_PLACEMENT
from repro.replication import ConnectionPool
from repro.sim import RandomStreams
from repro.sql import parse
from tests.replication.conftest import EU_WEST, run_process


@pytest.fixture
def cluster(sim, manager, master):
    slaves = [manager.add_slave(MASTER_PLACEMENT, name=f"s{i}")
              for i in range(3)]
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    return master, slaves, proxy


def test_writes_route_to_master(cluster):
    master, _slaves, proxy = cluster
    stmt = parse("INSERT INTO items (grp, v) VALUES (1, 1)")
    assert proxy.route(stmt) is master
    assert proxy.writes_routed == 1


def test_transaction_control_routes_to_master(cluster):
    master, _slaves, proxy = cluster
    assert proxy.route(parse("BEGIN")) is master
    assert proxy.route(parse("COMMIT")) is master


def test_reads_round_robin_over_slaves(cluster):
    _master, slaves, proxy = cluster
    stmt = parse("SELECT * FROM items")
    picked = [proxy.route(stmt).name for _ in range(6)]
    assert picked == ["s0", "s1", "s2", "s0", "s1", "s2"]
    assert proxy.reads_routed == 6


def test_reads_fall_back_to_master_without_slaves(sim, manager, master):
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    assert proxy.route(parse("SELECT 1")) is master


def test_random_policy(sim, manager, master):
    for i in range(3):
        manager.add_slave(MASTER_PLACEMENT, name=f"s{i}")
    rng = RandomStreams(5).stream("proxy")
    proxy = manager.build_proxy(MASTER_PLACEMENT, policy="random", rng=rng)
    picked = {proxy.route(parse("SELECT 1")).name for _ in range(60)}
    assert picked == {"s0", "s1", "s2"}


def test_random_policy_requires_rng(sim, manager, master):
    with pytest.raises(ValueError):
        manager.build_proxy(MASTER_PLACEMENT, policy="random")


def test_unknown_policy_rejected(sim, manager, master):
    with pytest.raises(ValueError):
        manager.build_proxy(MASTER_PLACEMENT, policy="fastest")


def test_least_outstanding_policy(sim, manager, master):
    slow = manager.add_slave(MASTER_PLACEMENT, name="busy")
    idle = manager.add_slave(MASTER_PLACEMENT, name="idle")
    proxy = manager.build_proxy(MASTER_PLACEMENT,
                                policy="least_outstanding")
    proxy._outstanding["busy"] = 5
    assert proxy.route(parse("SELECT 1")) is idle


def test_proxy_execute_round_trip(sim, cluster):
    master, _slaves, proxy = cluster

    def client(sim, proxy):
        yield from proxy.execute("INSERT INTO items (grp, v) VALUES (0, 7)")
        result = yield from proxy.execute("SELECT COUNT(*) FROM items")
        return result.result.scalar()

    # The read goes to a slave; run long enough for replication.
    def full(sim, proxy):
        yield from proxy.execute("INSERT INTO items (grp, v) VALUES (0, 7)")
        yield sim.timeout(1.0)
        result = yield from proxy.execute("SELECT COUNT(*) FROM items")
        return result.result.scalar()

    assert run_process(sim, full(sim, proxy)) == 1


def test_proxy_pinned_server(sim, cluster):
    master, slaves, proxy = cluster

    def client(proxy, server):
        result = yield from proxy.execute("SELECT COUNT(*) FROM items",
                                          server=server)
        return result

    run_process(sim, client(proxy, slaves[2]))
    assert slaves[2].queries_served == 1
    assert all(s.queries_served == 0 for s in slaves[:2])


def test_remote_read_pays_network_latency(sim, manager, master):
    manager.add_slave(EU_WEST, name="far")
    proxy = manager.build_proxy(MASTER_PLACEMENT)

    def client(sim, proxy):
        start = sim.now
        yield from proxy.execute("SELECT 1")
        return sim.now - start

    elapsed = run_process(sim, client(sim, proxy))
    assert elapsed > 0.3  # ~two 173 ms legs


# ---------------------------------------------------------------- pool
def test_pool_limits_concurrency(sim):
    pool = ConnectionPool(sim, max_active=2)
    holding = []

    def user(sim, pool, tag):
        conn = yield from pool.acquire()
        holding.append((tag, sim.now))
        yield sim.timeout(1.0)
        pool.release(conn)

    for tag in range(4):
        sim.process(user(sim, pool, tag))
    sim.run()
    times = dict(holding)
    assert times[0] == 0.0 and times[1] == 0.0
    assert times[2] == 1.0 and times[3] == 1.0


def test_pool_counters(sim):
    pool = ConnectionPool(sim, max_active=1)

    def user(sim, pool):
        conn = yield from pool.acquire()
        yield sim.timeout(2.0)
        pool.release(conn)

    sim.process(user(sim, pool))
    sim.process(user(sim, pool))
    sim.run()
    assert pool.total_borrows == 2
    assert pool.mean_wait_time == pytest.approx(1.0)
    assert pool.active == 0


def test_pool_rejects_bad_size(sim):
    from repro.sim import SimulationError
    with pytest.raises(SimulationError):
        ConnectionPool(sim, max_active=0)


def test_pool_active_and_waiting_gauges(sim):
    pool = ConnectionPool(sim, max_active=1)
    snapshots = []

    def user(sim, pool):
        conn = yield from pool.acquire()
        yield sim.timeout(1.0)
        pool.release(conn)

    def sampler(sim, pool):
        yield sim.timeout(0.5)
        snapshots.append((pool.active, pool.waiting))

    sim.process(user(sim, pool))
    sim.process(user(sim, pool))
    sim.process(sampler(sim, pool))
    sim.run()
    assert snapshots == [(1, 1)]


def test_interrupted_acquire_does_not_lose_pool_slot(sim):
    """Regression: interrupting a borrower while it waits in
    ``acquire()`` must cancel its claim, not permanently shrink the
    pool.  (The waiting request used to leak its slot.)"""
    from repro.sim import Interrupt

    pool = ConnectionPool(sim, max_active=1)
    order = []

    def holder(sim, pool):
        conn = yield from pool.acquire()
        order.append("held")
        yield sim.timeout(5.0)
        pool.release(conn)

    def waiter(sim, pool):
        try:
            conn = yield from pool.acquire()
        except Interrupt:
            order.append("interrupted")
            return
        pool.release(conn)  # pragma: no cover - must not be reached

    def late_user(sim, pool):
        yield sim.timeout(6.0)
        conn = yield from pool.acquire()
        order.append("late-acquired")
        pool.release(conn)

    sim.process(holder(sim, pool))
    victim = sim.process(waiter(sim, pool))

    def assassin(sim, victim):
        yield sim.timeout(1.0)  # victim is queued behind the holder
        victim.interrupt()

    sim.process(assassin(sim, victim))
    sim.process(late_user(sim, pool))
    sim.run()
    assert order == ["held", "interrupted", "late-acquired"]
    assert pool.active == 0
    assert pool.waiting == 0


def test_pool_acquire_timeout_raises_and_frees_slot(sim):
    """A bounded acquire that times out must raise PoolTimeout and
    cancel its claim — the slot goes to the next waiter, not into
    the void."""
    from repro.replication import PoolTimeout

    pool = ConnectionPool(sim, max_active=1)
    order = []

    def holder(sim, pool):
        conn = yield from pool.acquire()
        yield sim.timeout(5.0)
        pool.release(conn)

    def impatient(sim, pool):
        try:
            yield from pool.acquire(timeout=2.0)
        except PoolTimeout:
            order.append(("timed-out", sim.now))
            return
        order.append(("acquired", sim.now))  # pragma: no cover

    def patient(sim, pool):
        conn = yield from pool.acquire()
        order.append(("patient-acquired", sim.now))
        pool.release(conn)

    sim.process(holder(sim, pool))
    sim.process(impatient(sim, pool))
    sim.process(patient(sim, pool))
    sim.run()
    assert order == [("timed-out", 2.0), ("patient-acquired", 5.0)]
    assert pool.timeouts == 1
    assert pool.active == 0
    assert pool.waiting == 0


def test_pool_acquire_timeout_unused_when_granted_in_time(sim):
    pool = ConnectionPool(sim, max_active=1)
    done = []

    def user(sim, pool):
        conn = yield from pool.acquire(timeout=10.0)
        yield sim.timeout(1.0)
        pool.release(conn)
        done.append(sim.now)

    sim.process(user(sim, pool))
    sim.process(user(sim, pool))
    sim.run()
    assert done == [1.0, 2.0]
    assert pool.timeouts == 0
    assert pool.active == 0


def test_retry_loop_interrupted_during_backoff_leaks_nothing(sim):
    """Regression for the driver's retry loop: by the time a borrower
    sleeps its backoff, the connection is already released, so an
    interrupt landing in that sleep must leave the pool whole."""
    from repro.db.errors import DatabaseError
    from repro.replication import RetryPolicy
    from repro.sim import Interrupt

    policy = RetryPolicy(max_attempts=3, base_backoff=4.0,
                         multiplier=1.0, jitter=0.0)
    pool = ConnectionPool(sim, max_active=1)
    order = []

    def flaky_user(sim, pool):
        # The driver's shape: acquire, fail, release in finally,
        # back off, retry.
        try:
            for attempt in range(policy.max_attempts):
                connection = yield from pool.acquire()
                try:
                    raise DatabaseError("injected")
                except DatabaseError:
                    pass
                finally:
                    pool.release(connection)
                yield sim.timeout(policy.backoff_for(attempt))
        except Interrupt:
            order.append(("interrupted", sim.now))
            return

    victim = sim.process(flaky_user(sim, pool))

    def assassin(sim, victim):
        yield sim.timeout(2.0)  # mid-backoff: no connection held
        assert pool.active == 0
        victim.interrupt()

    def late_user(sim, pool):
        yield sim.timeout(3.0)
        conn = yield from pool.acquire()
        order.append(("late-acquired", sim.now))
        pool.release(conn)

    sim.process(assassin(sim, victim))
    sim.process(late_user(sim, pool))
    sim.run()
    assert order == [("interrupted", 2.0), ("late-acquired", 3.0)]
    assert pool.active == 0
    assert pool.waiting == 0

"""Read-your-writes session stickiness tests."""

import pytest

from repro.cloud import MASTER_PLACEMENT
from repro.sql import parse
from tests.replication.conftest import run_process

READ = parse("SELECT * FROM items")
WRITE = parse("INSERT INTO items (grp, v) VALUES (1, 1)")


@pytest.fixture
def sticky_proxy(sim, manager, master):
    for i in range(2):
        manager.add_slave(MASTER_PLACEMENT, name=f"s{i}")
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    proxy.read_your_writes_window = 5.0
    return proxy


def test_window_validation(sim, manager, master):
    from repro.replication import ReadWriteSplitProxy
    with pytest.raises(ValueError):
        ReadWriteSplitProxy(manager.cloud.network, master, [],
                            MASTER_PLACEMENT,
                            read_your_writes_window=-1.0)


def test_reads_stick_to_master_after_write(sim, sticky_proxy, master):
    assert sticky_proxy.route(READ, session="u1") is not master
    assert sticky_proxy.route(WRITE, session="u1") is master
    assert sticky_proxy.route(READ, session="u1") is master
    assert sticky_proxy.sticky_reads == 1


def test_stickiness_is_per_session(sim, sticky_proxy, master):
    sticky_proxy.route(WRITE, session="writer")
    assert sticky_proxy.route(READ, session="writer") is master
    assert sticky_proxy.route(READ, session="reader") is not master
    assert sticky_proxy.route(READ, session=None) is not master


def test_stickiness_expires_with_window(sim, sticky_proxy, master):
    sticky_proxy.route(WRITE, session="u1")

    def later(sim):
        yield sim.timeout(6.0)
        return sticky_proxy.route(READ, session="u1")

    target = run_process(sim, later(sim))
    assert target is not master


def test_zero_window_never_sticks(sim, manager, master):
    manager.add_slave(MASTER_PLACEMENT)
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    assert proxy.read_your_writes_window == 0.0
    proxy.route(WRITE, session="u1")
    assert proxy.route(READ, session="u1") is not master
    assert proxy.sticky_reads == 0


def test_read_your_writes_eliminates_stale_miss(sim, manager, master):
    """The behavioural payoff: a write-then-read session never misses
    its own row, while a plain session reading a lagging slave does."""
    manager.add_slave(manager.cloud.placement("eu-west-1a"))
    sticky_proxy = manager.build_proxy(MASTER_PLACEMENT)
    sticky_proxy.read_your_writes_window = 30.0
    plain_proxy = manager.build_proxy(MASTER_PLACEMENT)

    slave = manager.slaves[0]

    def backlog(sim, master):
        # Pile events into the slave's relay log so replication of the
        # probe write is visibly delayed.
        for i in range(80):
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES (0, {i})")

    def read_pressure(sim, slave):
        # Contend the slave CPU so its SQL thread drains the relay log
        # slowly — the paper's Figs. 5/6 mechanism.
        while sim.now < 20.0:
            yield from slave.perform("SELECT COUNT(*) FROM items")

    for _ in range(3):
        sim.process(read_pressure(sim, slave))

    def probe(sim, proxy, marker):
        # Join once the backlog writer is well ahead, so this probe's
        # binlog event sits deep in the slave's pending stream.
        yield sim.timeout(1.5)
        session = f"user-{marker}"
        insert = parse(f"INSERT INTO items (grp, v) VALUES (7, {marker})")
        yield from proxy.execute(
            insert, server=proxy.route(insert, session=session))
        read = parse(f"SELECT COUNT(*) FROM items WHERE v = {marker}")
        result = yield from proxy.execute(
            read, server=proxy.route(read, session=session))
        return result.result.scalar()

    sim.process(backlog(sim, master))
    sticky_probe = sim.process(probe(sim, sticky_proxy, 7001))
    plain_probe = sim.process(probe(sim, plain_proxy, 8001))
    sim.run(until=6.0)
    assert sticky_probe.value >= 1   # read its own write on the master
    assert plain_probe.value == 0    # stale read on the lagging slave
    # Eventually consistent: the row does arrive.
    sim.run()
    assert slave.admin("SELECT COUNT(*) FROM items WHERE v = 8001"
                       ).result.scalar() == 1

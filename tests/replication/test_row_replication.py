"""End-to-end row-based replication through the middleware."""

import pytest

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import HeartbeatPlugin, ReplicationManager
from repro.sim import RandomStreams, Simulator
from tests.replication.conftest import EU_WEST


@pytest.fixture
def row_manager(sim, cloud):
    return ReplicationManager(sim, cloud, ntp_period=None,
                              binlog_format="row")


@pytest.fixture
def row_master(row_manager):
    master = row_manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE items (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, grp INTEGER, v INTEGER)")
    return master


def drive(sim, master, count):
    def writer(sim, master):
        for i in range(count):
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES ({i % 3}, {i})")
            yield sim.timeout(0.05)
    sim.process(writer(sim, master))


def test_invalid_format_rejected(sim, cloud):
    from repro.cloud import SMALL
    from repro.replication import MasterServer
    instance = cloud.launch(SMALL, MASTER_PLACEMENT)
    with pytest.raises(ValueError):
        MasterServer(sim, instance, binlog_format="mixed")


def test_row_events_flow_through_binlog(sim, row_manager, row_master):
    slave = row_manager.add_slave(MASTER_PLACEMENT)
    drive(sim, row_master, 5)
    sim.run()
    data_events = [e for e in row_master.binlog.read_from(0)
                   if e.row_ops is not None]
    assert len(data_events) == 5
    assert all("row-based" in e.statement for e in data_events)
    assert slave.applied_position == row_master.binlog.head_position
    assert row_manager.verify_consistency()


def test_ddl_stays_statement_based(sim, row_manager, row_master):
    events = row_master.binlog.read_from(0)
    assert all(e.row_ops is None for e in events)  # the setup DDL
    assert any(e.statement.startswith("CREATE TABLE") for e in events)


def test_row_replication_converges_updates_and_deletes(sim, row_manager,
                                                       row_master):
    slave = row_manager.add_slave(EU_WEST)

    def writer(sim, master):
        for i in range(10):
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES ({i % 2}, {i})")
        yield from master.perform("UPDATE items SET v = v + 100 "
                                  "WHERE grp = 0")
        yield from master.perform("DELETE FROM items WHERE grp = 1")

    sim.process(writer(sim, row_master))
    sim.run()
    assert row_manager.all_caught_up()
    assert row_manager.verify_consistency()
    assert slave.admin("SELECT COUNT(*) FROM items").result.scalar() == 5


def test_row_format_breaks_heartbeat_methodology(sim, row_manager,
                                                 row_master):
    """With row-based replication the slave commits the MASTER's
    timestamp — the paper's delay measurement requires statement-based
    replication.  This pins that semantic difference."""
    from repro.replication import collect_delays
    plugin = HeartbeatPlugin(sim, row_master, interval=1.0)
    plugin.install()
    slave = row_manager.add_slave(MASTER_PLACEMENT)
    slave.instance.clock.step_to_error(5.0)  # huge skew, should NOT show
    plugin.start()
    sim.run(until=6.5)
    plugin.stop()
    sim.run(until=10.0)
    samples = collect_delays(plugin, slave)
    assert samples
    # Identical timestamps: measured delay ~0 despite 5 s of skew.
    assert all(abs(s.delay_ms) < 1.0 for s in samples)


def test_statement_format_sees_the_same_skew(sim, manager, master):
    from repro.replication import collect_delays
    plugin = HeartbeatPlugin(sim, master, interval=1.0)
    plugin.install()
    slave = manager.add_slave(MASTER_PLACEMENT)
    slave.instance.clock.step_to_error(5.0)
    plugin.start()
    sim.run(until=6.5)
    plugin.stop()
    sim.run(until=10.0)
    samples = collect_delays(plugin, slave)
    assert samples
    assert all(s.delay_ms > 4900.0 for s in samples)


def test_row_apply_cheaper_than_statement_apply(sim, cloud):
    """The slave burns less CPU applying row images than re-executing
    statements (for this simple-row workload)."""
    def apply_cpu(fmt, seed=71):
        sim = Simulator()
        cloud = Cloud(sim, RandomStreams(seed))
        manager = ReplicationManager(sim, cloud, ntp_period=None,
                                     binlog_format=fmt)
        master = manager.create_master(MASTER_PLACEMENT)
        master.admin("CREATE TABLE items (id INTEGER PRIMARY KEY "
                     "AUTO_INCREMENT, grp INTEGER, v INTEGER)")
        slave = manager.add_slave(MASTER_PLACEMENT)
        drive(sim, master, 40)
        sim.run()
        assert manager.verify_consistency()
        return slave.instance.busy_time

    assert apply_cpu("row") < apply_cpu("statement")


def test_row_events_larger_on_wire(sim, cloud):
    def bytes_for(fmt, seed=72):
        sim = Simulator()
        cloud = Cloud(sim, RandomStreams(seed))
        manager = ReplicationManager(sim, cloud, ntp_period=None,
                                     binlog_format=fmt)
        master = manager.create_master(MASTER_PLACEMENT)
        master.admin("CREATE TABLE items (id INTEGER PRIMARY KEY "
                     "AUTO_INCREMENT, grp INTEGER, v INTEGER)")
        manager.add_slave(MASTER_PLACEMENT)

        def writer(sim, master):
            # One statement inserting many rows: the row format ships
            # every image, the statement format ships the text once.
            values = ", ".join(f"({i % 3}, {i})" for i in range(50))
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES {values}")

        sim.process(writer(sim, master))
        sim.run()
        return cloud.network.bytes_sent

    assert bytes_for("row") > bytes_for("statement")

"""DatabaseServer and CostModel tests."""

import pytest

from repro.cloud import MASTER_PLACEMENT, SMALL
from repro.db import DatabaseError
from repro.db.engine import ExecutionProfile
from repro.replication import DEFAULT_COST_MODEL, CostModel, DatabaseServer
from tests.replication.conftest import run_process


def make_server(sim, cloud, read_only=False):
    instance = cloud.launch(SMALL, MASTER_PLACEMENT)
    server = DatabaseServer(sim, instance, read_only=read_only)
    server.admin("CREATE DATABASE IF NOT EXISTS cloudstone")
    server.admin("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, "
                 "v INTEGER)")
    return server


def test_perform_charges_cpu(sim, cloud):
    server = make_server(sim, cloud)

    def client(sim, server):
        yield from server.perform("INSERT INTO t (v) VALUES (1)")
        return sim.now

    finished = run_process(sim, client(sim, server))
    expected_work = DEFAULT_COST_MODEL.work_for(
        ExecutionProfile("insert", rows_affected=1))
    assert finished == pytest.approx(
        expected_work / server.instance.effective_speed)
    assert server.queries_served == 1
    assert server.writes_served == 1


def test_admin_is_free(sim, cloud):
    server = make_server(sim, cloud)
    server.admin("INSERT INTO t (v) VALUES (1)")
    assert sim.now == 0.0
    assert server.instance.busy_time == 0.0


def test_read_only_rejects_writes(sim, cloud):
    server = make_server(sim, cloud, read_only=True)

    def client(server):
        yield from server.perform("INSERT INTO t (v) VALUES (1)")

    process = sim.process(client(server))
    with pytest.raises(DatabaseError):
        sim.run()
    assert process.triggered


def test_read_only_allows_reads(sim, cloud):
    server = make_server(sim, cloud, read_only=True)
    server.admin("INSERT INTO t (v) VALUES (5)")

    def client(server):
        result = yield from server.perform("SELECT v FROM t")
        return result.result.rows

    assert run_process(sim, client(server)) == [(5,)]


def test_concurrent_queries_queue_on_cpu(sim, cloud):
    server = make_server(sim, cloud)
    finish_times = []

    def client(sim, server):
        yield from server.perform("SELECT * FROM t")
        finish_times.append(sim.now)

    for _ in range(3):
        sim.process(client(sim, server))
    sim.run()
    # Single core: completions must be strictly serialized.
    assert finish_times[1] == pytest.approx(2 * finish_times[0])
    assert finish_times[2] == pytest.approx(3 * finish_times[0])


def test_slower_instance_takes_longer(sim, cloud):
    fast = cloud.launch(SMALL, MASTER_PLACEMENT, name="fast")
    slow = cloud.launch(SMALL, MASTER_PLACEMENT, name="slow")
    fast.host_noise = 1.0
    slow.host_noise = 1.0
    fast.cpu_model = type(fast.cpu_model)("fast", 1.0)
    slow.cpu_model = type(slow.cpu_model)("slow", 0.5)
    durations = {}

    def client(sim, server, tag):
        start = sim.now
        yield from server.perform("SELECT 1")
        durations[tag] = sim.now - start

    for tag, instance in (("fast", fast), ("slow", slow)):
        server = DatabaseServer(sim, instance)
        sim.process(client(sim, server, tag))
    sim.run()
    assert durations["slow"] == pytest.approx(2 * durations["fast"])


# ------------------------------------------------------------- cost model
def test_cost_scales_with_rows_examined():
    model = CostModel()
    cheap = model.work_for(ExecutionProfile("select", rows_examined=1))
    pricey = model.work_for(ExecutionProfile("select", rows_examined=300))
    assert pricey > cheap
    assert pricey - cheap == pytest.approx(299 * model.per_row_examined_s)


def test_write_cost_exceeds_point_read_cost():
    model = CostModel()
    write = model.work_for(ExecutionProfile("insert", rows_affected=1))
    read = model.work_for(ExecutionProfile("select", rows_examined=1,
                                           rows_returned=1))
    assert write > read


def test_apply_cost_cheaper_than_client_write():
    model = CostModel()
    profile = ExecutionProfile("insert", rows_affected=3)
    assert model.apply_work_for(profile) == \
        pytest.approx(model.work_for(profile) * model.apply_cost_factor)
    assert model.apply_work_for(profile) < model.work_for(profile)


def test_ddl_cost():
    model = CostModel()
    assert model.work_for(ExecutionProfile("ddl")) == \
        pytest.approx(model.per_statement_s + model.per_ddl_s)

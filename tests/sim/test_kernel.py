"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import (AllOf, AnyOf, Interrupt, SimulationError, Simulator)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(5.0)
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [5.0]
    assert sim.now == 5.0


def test_timeout_delivers_value():
    sim = Simulator()
    seen = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        seen.append(value)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return 42

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 42
    assert p.ok


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(sim, 3.0, "c"))
    sim.process(proc(sim, 1.0, "a"))
    sim.process(proc(sim, 2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list(range(10))


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        while True:
            yield sim.timeout(10.0)

    sim.process(proc(sim))
    sim.run(until=25.0)
    assert sim.now == 25.0


def test_run_until_past_last_event_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_in_the_past_rejected():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.process(proc(sim))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_process_waits_on_another_process():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(4.0)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        log.append((sim.now, result))

    sim.process(parent(sim))
    sim.run()
    assert log == [(4.0, "child-result")]


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim):
        value = yield ev
        got.append((sim.now, value))

    def firer(sim):
        yield sim.timeout(7.0)
        ev.succeed("fired")

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert got == [(7.0, "fired")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_surfaces():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        sim.run()


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except KeyError:
            caught.append(True)

    sim.process(parent(sim))
    sim.run()
    assert caught == [True]


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 123

    p = sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()
    assert p.triggered and not p._ok


def test_any_of_fires_on_first():
    sim = Simulator()
    log = []

    def proc(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(9.0, value="slow")
        result = yield fast | slow
        log.append((sim.now, list(result.values())))

    sim.process(proc(sim))
    sim.run()
    assert log == [(1.0, ["fast"])]
    assert sim.now == 9.0  # the slow timeout still drains


def test_all_of_waits_for_all():
    sim = Simulator()
    log = []

    def proc(sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(5.0, value="b")
        result = yield a & b
        log.append((sim.now, sorted(result.values())))

    sim.process(proc(sim))
    sim.run()
    assert log == [(5.0, ["a", "b"])]


def test_any_of_with_already_fired_event():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(2.0)
        done = sim.event()
        done.succeed("instant")
        result = yield AnyOf(sim, [done, sim.timeout(50.0)])
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=10.0)
    assert log == [2.0]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    log = []

    def proc(sim):
        yield AllOf(sim, [])
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [0.0]


def test_interrupt_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt(cause="wake-up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run(until=10.0)
    assert log == [(3.0, "wake-up")]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_is_alive_lifecycle():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_peek_reports_next_event_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(8.0)

    sim.process(proc(sim))
    sim.step()  # consume process-init event
    assert sim.peek() == 8.0
    sim.run()
    assert sim.peek() == float("inf")


def test_value_before_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_nested_process_chain_times():
    sim = Simulator()
    trace = []

    def level(sim, depth):
        if depth > 0:
            yield sim.process(level(sim, depth - 1))
        yield sim.timeout(1.0)
        trace.append((depth, sim.now))

    sim.process(level(sim, 3))
    sim.run()
    assert trace == [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)]

"""Kernel edge cases around interrupts, failures and cleanup."""

import pytest

from repro.sim import (AnyOf, Interrupt, Resource, SimulationError,
                       Simulator, Store)


def test_interrupt_releases_resource_via_finally():
    """The pattern every server uses: CPU released even when the
    holding process is interrupted mid-service."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def holder(sim, resource):
        request = resource.request()
        yield request
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            log.append("interrupted")
            raise
        finally:
            resource.release(request)

    def late_user(sim, resource):
        yield sim.timeout(10.0)
        request = resource.request()
        yield request
        log.append(("acquired", sim.now))
        resource.release(request)

    victim = sim.process(holder(sim, resource))
    sim.process(late_user(sim, resource))

    def killer(sim, victim):
        yield sim.timeout(5.0)
        victim.interrupt()

    sim.process(killer(sim, victim))
    with pytest.raises(Interrupt):
        sim.run()
    sim.run()
    assert ("acquired", 10.0) in log
    assert resource.in_use == 0


def test_interrupt_handled_gracefully_continues():
    sim = Simulator()
    log = []

    def worker(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append(intr.cause)
        yield sim.timeout(1.0)
        log.append(sim.now)

    victim = sim.process(worker(sim))

    def killer(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake")

    sim.process(killer(sim, victim))
    sim.run()
    assert log == ["wake", 3.0]


def test_any_of_failing_child_propagates():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("child failed")

    def waiter(sim):
        child = sim.process(bad(sim))
        slow = sim.timeout(50.0)
        try:
            yield AnyOf(sim, [child, slow])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    sim.run()
    assert caught == ["child failed"]


def test_waiting_on_already_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("early"))
    ev.defuse()
    sim.run()
    caught = []

    def late_waiter(sim, ev):
        try:
            yield ev
        except RuntimeError:
            caught.append(True)

    sim.process(late_waiter(sim, ev))
    sim.run()
    assert caught == [True]


def test_step_on_empty_heap_raises_indexerror():
    with pytest.raises(IndexError):
        Simulator().step()


def test_store_putter_chain_drains_in_order():
    sim = Simulator()
    store = Store(sim, capacity=1)
    stored = []

    def producer(sim, store, tag):
        yield store.put(tag)
        stored.append((tag, sim.now))

    for tag in ("a", "b", "c"):
        sim.process(producer(sim, store, tag))

    def consumer(sim, store):
        for _ in range(3):
            yield sim.timeout(1.0)
            yield store.get()

    sim.process(consumer(sim, store))
    sim.run()
    assert [tag for tag, _t in stored] == ["a", "b", "c"]


def test_interrupt_process_waiting_on_store_get():
    """stop_replication interrupts the SQL thread parked on the relay
    log; a later put must not be swallowed by the dead getter."""
    sim = Simulator()
    store = Store(sim)
    got = []

    def sleeper(sim, store):
        try:
            yield store.get()
        except Interrupt:
            return

    def live_consumer(sim, store):
        value = yield store.get()
        got.append(value)

    victim = sim.process(sleeper(sim, store))

    def script(sim):
        yield sim.timeout(1.0)
        victim.interrupt()
        yield sim.timeout(1.0)
        sim.process(live_consumer(sim, store))
        yield sim.timeout(1.0)
        store.put("payload")

    sim.process(script(sim))
    sim.run()
    # Documented behaviour: the interrupted getter still occupies its
    # queue slot, so the first put is consumed by it and lost to live
    # consumers.  (Failover therefore swaps in a fresh Store rather
    # than reusing one with a dead getter.)
    assert got == []
    ok, value = store.try_get()
    assert not ok


def test_condition_value_collects_only_fired_children():
    sim = Simulator()
    results = []

    def waiter(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(5.0, value="slow")
        outcome = yield AnyOf(sim, [fast, slow])
        results.append(sorted(outcome.values()))

    sim.process(waiter(sim))
    sim.run()
    assert results == [["fast"]]


def test_process_name_defaults():
    sim = Simulator()

    def some_proc(sim):
        yield sim.timeout(1.0)

    named = sim.process(some_proc(sim), name="custom")
    default = sim.process(some_proc(sim))
    assert named.name == "custom"
    assert default.name == "some_proc"
    sim.run()


# ------------------------------------------------- double triggering
def test_double_succeed_raises_with_clear_message():
    sim = Simulator()
    event = sim.event()
    event.succeed("first")
    with pytest.raises(SimulationError) as excinfo:
        event.succeed("second")
    message = str(excinfo.value)
    assert "succeed()" in message
    assert "exactly once" in message
    assert "succeeded" in message  # the event's state is named


def test_fail_after_succeed_raises_with_clear_message():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError, match="fail\\(\\) on"):
        event.fail(RuntimeError("boom"))


def test_succeed_after_fail_raises_and_names_failure():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("boom")).defuse()
    with pytest.raises(SimulationError) as excinfo:
        event.succeed(2)
    assert "failed" in str(excinfo.value)


def test_double_fail_raises():
    sim = Simulator()
    event = sim.event()
    event.fail(ValueError("first")).defuse()
    with pytest.raises(SimulationError):
        event.fail(ValueError("second"))
    sim.run()  # the defused failure never re-raises


def test_double_trigger_leaves_event_state_intact():
    sim = Simulator()
    event = sim.event()
    event.succeed("kept")
    with pytest.raises(SimulationError):
        event.succeed("lost")
    sim.run()
    assert event.ok
    assert event.value == "kept"


def test_triggering_fired_timeout_raises():
    sim = Simulator()
    timeout = sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError):
        timeout.succeed("late")


def test_event_and_process_reprs_describe_state():
    sim = Simulator()
    event = sim.event()
    assert repr(event) == "<Event pending>"
    event.succeed()
    assert repr(event) == "<Event succeeded>"

    def worker(sim):
        yield sim.timeout(1.0)

    process = sim.process(worker(sim), name="worker")
    assert repr(process) == "<Process 'worker' alive>"
    sim.run()
    assert repr(process) == "<Process 'worker' finished>"

"""Property-based tests on the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []

    def proc(sim, delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.process(proc(sim, delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30),
       capacity=st.integers(min_value=1, max_value=5))
@settings(max_examples=100, deadline=None)
def test_resource_never_exceeds_capacity(delays, capacity):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_in_use = 0

    def worker(sim, res, hold):
        nonlocal max_in_use
        req = res.request()
        yield req
        max_in_use = max(max_in_use, res.in_use)
        yield sim.timeout(hold)
        res.release(req)

    for delay in delays:
        sim.process(worker(sim, res, delay))
    sim.run()
    assert max_in_use <= capacity
    assert res.in_use == 0
    assert res.queue_length == 0


@given(items=st.lists(st.integers(), min_size=0, max_size=40))
@settings(max_examples=100, deadline=None)
def test_store_preserves_fifo_order_and_count(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer(sim, store):
        for item in items:
            store.put(item)
            yield sim.timeout(0.5)

    def consumer(sim, store):
        for _ in range(len(items)):
            value = yield store.get()
            received.append(value)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert received == items
    assert len(store) == 0


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(seed):
    """Two identical runs produce identical event traces."""

    def build_and_run():
        sim = Simulator()
        trace = []

        def worker(sim, tag, period):
            for _ in range(5):
                yield sim.timeout(period)
                trace.append((tag, sim.now))

        for tag in range(4):
            sim.process(worker(sim, tag, 0.1 + 0.37 * ((seed + tag) % 7)))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()

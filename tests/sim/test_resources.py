"""Unit tests for Resource, Store and Gate."""

import pytest

from repro.sim import Gate, Resource, SimulationError, Simulator, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def worker(sim, res, tag):
        req = res.request()
        yield req
        grants.append((tag, sim.now))
        yield sim.timeout(10.0)
        res.release(req)

    for tag in range(3):
        sim.process(worker(sim, res, tag))
    sim.run()
    assert grants == [(0, 0.0), (1, 0.0), (2, 10.0)]


def test_resource_fifo_queue():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, tag, start):
        yield sim.timeout(start)
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(5.0)
        res.release(req)

    sim.process(worker(sim, res, "a", 0.0))
    sim.process(worker(sim, res, "b", 1.0))
    sim.process(worker(sim, res, "c", 2.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder(sim, res):
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    def sampler(sim, res, samples):
        yield sim.timeout(5.0)
        samples.append((res.in_use, res.queue_length))

    samples = []
    sim.process(holder(sim, res))
    sim.process(holder(sim, res))
    sim.process(sampler(sim, res, samples))
    sim.run()
    assert samples == [(1, 1)]


def test_release_waiting_request_cancels_it():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    assert not second.granted
    res.release(second)  # cancel while queued
    res.release(first)
    assert res.in_use == 0
    assert res.queue_length == 0


def test_release_unknown_request_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    stray = res.request()
    res.release(stray)
    with pytest.raises(SimulationError):
        res.release(stray)


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


# ------------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    store.put("x")
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [(0.0, "x")]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(6.0)
        store.put("late")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert got == [(6.0, "late")]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for item in ("a", "b", "c"):
        store.put(item)
    got = []

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(consumer(sim, store))
    sim.run()
    assert got == ["a", "b", "c"]


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store, tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(consumer(sim, store, 1))
    sim.process(consumer(sim, store, 2))

    def producer(sim, store):
        yield sim.timeout(1.0)
        store.put("first")
        store.put("second")

    sim.process(producer(sim, store))
    sim.run()
    assert got == [(1, "first"), (2, "second")]


def test_bounded_store_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer(sim, store):
        yield store.put("a")
        timeline.append(("a-stored", sim.now))
        yield store.put("b")
        timeline.append(("b-stored", sim.now))

    def consumer(sim, store):
        yield sim.timeout(5.0)
        item = yield store.get()
        timeline.append(("got-" + item, sim.now))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert timeline == [("a-stored", 0.0), ("got-a", 5.0), ("b-stored", 5.0)]


def test_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put(7)
    ok, item = store.try_get()
    assert ok and item == 7


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


# -------------------------------------------------------------------- Gate
def test_gate_open_releases_waiters():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter(sim, gate, tag):
        yield gate.wait()
        woke.append((tag, sim.now))

    sim.process(waiter(sim, gate, 1))
    sim.process(waiter(sim, gate, 2))

    def opener(sim, gate):
        yield sim.timeout(4.0)
        gate.open()

    sim.process(opener(sim, gate))
    sim.run()
    assert woke == [(1, 4.0), (2, 4.0)]


def test_open_gate_passes_immediately():
    sim = Simulator()
    gate = Gate(sim, open_=True)
    woke = []

    def waiter(sim, gate):
        yield gate.wait()
        woke.append(sim.now)

    sim.process(waiter(sim, gate))
    sim.run()
    assert woke == [0.0]


def test_gate_reclose():
    sim = Simulator()
    gate = Gate(sim, open_=True)
    gate.close()
    assert not gate.is_open
    woke = []

    def waiter(sim, gate):
        yield gate.wait()
        woke.append(sim.now)

    sim.process(waiter(sim, gate))
    sim.run()
    assert woke == []  # never opened again
    gate.open()
    sim.run()
    assert woke == [0.0]

"""Tests for deterministic named RNG streams."""

import numpy as np

from repro.sim import RandomStreams


def test_same_seed_same_name_reproduces():
    a = RandomStreams(seed=7).stream("net").random(5)
    b = RandomStreams(seed=7).stream("net").random(5)
    assert np.array_equal(a, b)


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("net").random(5)
    b = streams.stream("cpu").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("net").random(5)
    b = RandomStreams(seed=2).stream("net").random(5)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_spawn_indexed_streams_differ():
    streams = RandomStreams(seed=0)
    a = streams.spawn("user", 0).random(3)
    b = streams.spawn("user", 1).random(3)
    assert not np.array_equal(a, b)


def test_lognormal_around_median():
    streams = RandomStreams(seed=3)
    samples = [streams.lognormal_around("lat", median=10.0, sigma=0.2)
               for _ in range(4000)]
    assert abs(np.median(samples) - 10.0) < 0.5


def test_choice_weighted_respects_weights():
    streams = RandomStreams(seed=4)
    picks = [streams.choice_weighted("mix", ["r", "w"], [9.0, 1.0])
             for _ in range(2000)]
    read_fraction = picks.count("r") / len(picks)
    assert 0.85 < read_fraction < 0.95


def test_choice_unweighted():
    streams = RandomStreams(seed=5)
    picks = {streams.choice_weighted("c", [1, 2, 3]) for _ in range(100)}
    assert picks == {1, 2, 3}


def test_exponential_mean():
    streams = RandomStreams(seed=6)
    samples = [streams.exponential("think", 5.0) for _ in range(5000)]
    assert abs(np.mean(samples) - 5.0) < 0.3


def test_uniform_bounds():
    streams = RandomStreams(seed=8)
    for _ in range(100):
        x = streams.uniform("u", 2.0, 3.0)
        assert 2.0 <= x < 3.0

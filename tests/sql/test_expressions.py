"""Expression evaluation tests."""

import pytest

from repro.sql import EvalContext, EvaluationError, evaluate, like_match, parse
from repro.sql.ast import ColumnRef


def eval_sql(expr_sql, row=None, params=None, functions=None):
    stmt = parse(f"SELECT {expr_sql}")
    ctx = EvalContext(row=row or {}, params=params or (),
                      functions=functions or {})
    return evaluate(stmt.items[0].expression, ctx)


def test_arithmetic():
    assert eval_sql("1 + 2 * 3") == 7
    assert eval_sql("(1 + 2) * 3") == 9
    assert eval_sql("10 / 4") == 2.5
    assert eval_sql("10 % 3") == 1
    assert eval_sql("-5 + 2") == -3


def test_division_by_zero_is_null():
    assert eval_sql("1 / 0") is None
    assert eval_sql("1 % 0") is None


def test_comparisons():
    assert eval_sql("3 > 2") is True
    assert eval_sql("2 >= 3") is False
    assert eval_sql("'abc' = 'abc'") is True
    assert eval_sql("1 != 2") is True


def test_null_propagation():
    assert eval_sql("NULL + 1") is None
    assert eval_sql("NULL = NULL") is None
    assert eval_sql("NOT NULL") is None


def test_three_valued_and_or():
    assert eval_sql("TRUE AND NULL") is None
    assert eval_sql("FALSE AND NULL") is False
    assert eval_sql("TRUE OR NULL") is True
    assert eval_sql("FALSE OR NULL") is None


def test_in_list():
    assert eval_sql("2 IN (1, 2, 3)") is True
    assert eval_sql("5 IN (1, 2, 3)") is False
    assert eval_sql("5 NOT IN (1, 2, 3)") is True
    assert eval_sql("NULL IN (1)") is None


def test_between():
    assert eval_sql("2 BETWEEN 1 AND 3") is True
    assert eval_sql("0 BETWEEN 1 AND 3") is False
    assert eval_sql("0 NOT BETWEEN 1 AND 3") is True


def test_like():
    assert eval_sql("'hello' LIKE 'he%'") is True
    assert eval_sql("'hello' LIKE 'h_llo'") is True
    assert eval_sql("'hello' LIKE 'x%'") is False
    assert eval_sql("'hello' NOT LIKE 'x%'") is True


def test_like_case_insensitive():
    assert like_match("Hello", "hello")
    assert like_match("TAG42", "tag%")


def test_like_special_chars_escaped():
    assert like_match("a.b", "a.b")
    assert not like_match("axb", "a.b")  # '.' is literal, not wildcard


def test_is_null():
    assert eval_sql("NULL IS NULL") is True
    assert eval_sql("1 IS NULL") is False
    assert eval_sql("1 IS NOT NULL") is True


def test_column_lookup():
    row = {"users.id": 7, "users.name": "bob"}
    assert eval_sql("id + 1", row=row) == 8
    assert eval_sql("users.name", row=row) == "bob"


def test_unknown_column_raises():
    with pytest.raises(EvaluationError):
        eval_sql("missing", row={"t.a": 1})


def test_ambiguous_column_raises():
    row = {"a.id": 1, "b.id": 2}
    with pytest.raises(EvaluationError):
        evaluate(ColumnRef("id"), EvalContext(row=row))


def test_params():
    assert eval_sql("? + ?", params=(2, 3)) == 5


def test_unbound_param_raises():
    with pytest.raises(EvaluationError):
        eval_sql("?", params=())


def test_function_dispatch():
    assert eval_sql("double(4)", functions={"DOUBLE": lambda v: v * 2}) == 8


def test_unknown_function_raises():
    with pytest.raises(EvaluationError):
        eval_sql("nope()")


def test_string_concat_plus_rejected_types():
    # '+' on strings follows Python semantics here; MySQL would coerce,
    # the workload never relies on it.
    assert eval_sql("'a' + 'b'") == "ab"

"""Lexer tests."""

import pytest

from repro.sql.lexer import LexerError, tokenize
from repro.sql.tokens import TokenType


def types_of(text):
    return [t.type for t in tokenize(text)]


def values_of(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_empty_input_gives_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_keywords_are_case_insensitive():
    for text in ("select", "SELECT", "SeLeCt"):
        token = tokenize(text)[0]
        assert token.type is TokenType.KEYWORD
        assert token.value == "SELECT"


def test_identifiers_lowercased():
    token = tokenize("MyTable")[0]
    assert token.type is TokenType.IDENTIFIER
    assert token.value == "mytable"


def test_backquoted_identifier():
    token = tokenize("`Weird Name`")[0]
    assert token.type is TokenType.IDENTIFIER
    assert token.value == "weird name"


def test_unterminated_backquote():
    with pytest.raises(LexerError):
        tokenize("`oops")


def test_numbers():
    assert values_of("1 42 3.14 .5 1e3 2.5E-2") == \
        ["1", "42", "3.14", ".5", "1e3", "2.5E-2"]
    for token in tokenize("1 3.14")[:-1]:
        assert token.type is TokenType.NUMBER


def test_single_quoted_string():
    token = tokenize("'hello world'")[0]
    assert token.type is TokenType.STRING
    assert token.value == "hello world"


def test_string_escapes():
    assert tokenize(r"'a\'b'")[0].value == "a'b"
    assert tokenize("'a''b'")[0].value == "a'b"
    assert tokenize(r"'line\nbreak'")[0].value == "line\nbreak"


def test_unterminated_string():
    with pytest.raises(LexerError):
        tokenize("'oops")


def test_operators():
    assert values_of("< > = <= >= != <> + - / %") == \
        ["<", ">", "=", "<=", ">=", "!=", "<>", "+", "-", "/", "%"]


def test_star_and_punctuation():
    assert types_of("(*, .);")[:-1] == [
        TokenType.LPAREN, TokenType.STAR, TokenType.COMMA, TokenType.DOT,
        TokenType.RPAREN, TokenType.SEMICOLON]


def test_param_placeholder():
    tokens = tokenize("id = ?")
    assert tokens[2].type is TokenType.PARAM


def test_line_comment_skipped():
    tokens = tokenize("SELECT 1 -- trailing comment\n+ 2")
    assert [t.value for t in tokens[:-1]] == ["SELECT", "1", "+", "2"]


def test_unexpected_character():
    with pytest.raises(LexerError):
        tokenize("SELECT @var")


def test_whole_statement():
    values = values_of(
        "SELECT id FROM users WHERE name = 'bob' LIMIT 5")
    assert values == ["SELECT", "id", "FROM", "users", "WHERE", "name",
                      "=", "bob", "LIMIT", "5"]

"""Parser tests."""

import pytest

from repro.sql import ParseError, parse, parse_many
from repro.sql.ast import (BeginStatement, BinaryOp, ColumnRef,
                           CommitStatement, CreateDatabaseStatement,
                           CreateIndexStatement, CreateTableStatement,
                           DeleteStatement, DropTableStatement, FunctionCall,
                           InList, InsertStatement, IsNull, LikeOp, Literal,
                           ParamRef, RollbackStatement, SelectStatement,
                           Star, UpdateStatement, UseStatement)


# ---------------------------------------------------------------- SELECT
def test_select_star():
    stmt = parse("SELECT * FROM users")
    assert isinstance(stmt, SelectStatement)
    assert isinstance(stmt.items[0].expression, Star)
    assert stmt.table == "users"
    assert not stmt.is_write


def test_select_columns_and_alias():
    stmt = parse("SELECT id, name AS label FROM users u")
    assert stmt.items[0].expression == ColumnRef("id")
    assert stmt.items[1].alias == "label"
    assert stmt.alias == "u"


def test_select_qualified_column():
    stmt = parse("SELECT u.name FROM users u")
    assert stmt.items[0].expression == ColumnRef("name", table="u")


def test_select_where_comparison():
    stmt = parse("SELECT * FROM t WHERE a >= 10 AND b != 'x'")
    where = stmt.where
    assert isinstance(where, BinaryOp) and where.op == "AND"
    assert where.left == BinaryOp(">=", ColumnRef("a"), Literal(10))
    assert where.right == BinaryOp("!=", ColumnRef("b"), Literal("x"))


def test_diamond_normalized_to_bang_equals():
    stmt = parse("SELECT * FROM t WHERE a <> 1")
    assert stmt.where.op == "!="


def test_select_in_between_like_null():
    stmt = parse("SELECT * FROM t WHERE a IN (1, 2) AND b BETWEEN 3 AND 4 "
                 "AND c LIKE 'x%' AND d IS NOT NULL")
    conjuncts = []

    def flatten(e):
        if isinstance(e, BinaryOp) and e.op == "AND":
            flatten(e.left)
            flatten(e.right)
        else:
            conjuncts.append(e)
    flatten(stmt.where)
    assert isinstance(conjuncts[0], InList)
    assert conjuncts[1].low == Literal(3)
    assert isinstance(conjuncts[2], LikeOp)
    assert conjuncts[3] == IsNull(ColumnRef("d"), negated=True)


def test_select_not_in():
    stmt = parse("SELECT * FROM t WHERE a NOT IN (1)")
    assert stmt.where.negated


def test_select_order_limit_offset():
    stmt = parse("SELECT * FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5")
    assert stmt.order_by[0].descending
    assert not stmt.order_by[1].descending
    assert stmt.limit == 10
    assert stmt.offset == 5


def test_mysql_limit_comma_form():
    stmt = parse("SELECT * FROM t LIMIT 5, 10")
    assert stmt.offset == 5
    assert stmt.limit == 10


def test_select_join():
    stmt = parse("SELECT u.name, e.title FROM users u "
                 "JOIN events e ON e.owner = u.id")
    assert len(stmt.joins) == 1
    join = stmt.joins[0]
    assert join.table == "events" and join.alias == "e"
    assert join.condition == BinaryOp(
        "=", ColumnRef("owner", "e"), ColumnRef("id", "u"))


def test_inner_join_keyword():
    stmt = parse("SELECT * FROM a INNER JOIN b ON b.x = a.x")
    assert stmt.joins[0].table == "b"


def test_left_join_rejected():
    with pytest.raises(ParseError):
        parse("SELECT * FROM a LEFT JOIN b ON b.x = a.x")


def test_select_aggregates():
    stmt = parse("SELECT COUNT(*), MAX(karma) FROM users")
    count = stmt.items[0].expression
    assert isinstance(count, FunctionCall) and count.name == "COUNT"
    assert isinstance(count.args[0], Star)
    assert stmt.items[1].expression.name == "MAX"


def test_select_count_distinct():
    stmt = parse("SELECT COUNT(DISTINCT owner) FROM events")
    assert stmt.items[0].expression.distinct


def test_select_without_from():
    stmt = parse("SELECT 1 + 2")
    assert stmt.table is None
    assert stmt.items[0].expression == BinaryOp("+", Literal(1), Literal(2))


def test_select_function_call():
    stmt = parse("SELECT USEC_NOW()")
    expr = stmt.items[0].expression
    assert expr == FunctionCall("USEC_NOW", ())


def test_select_params():
    stmt = parse("SELECT * FROM t WHERE a = ? AND b = ?")
    first = stmt.where.left.right
    second = stmt.where.right.right
    assert first == ParamRef(0)
    assert second == ParamRef(1)


def test_select_distinct():
    assert parse("SELECT DISTINCT a FROM t").distinct


def test_arithmetic_precedence():
    stmt = parse("SELECT 1 + 2 * 3")
    expr = stmt.items[0].expression
    assert expr == BinaryOp("+", Literal(1),
                            BinaryOp("*", Literal(2), Literal(3)))


def test_parenthesized_expression():
    stmt = parse("SELECT (1 + 2) * 3")
    expr = stmt.items[0].expression
    assert expr.op == "*"


def test_unary_minus():
    stmt = parse("SELECT -5")
    from repro.sql.ast import UnaryOp
    assert stmt.items[0].expression == UnaryOp("-", Literal(5))


# ------------------------------------------------------------------ DML
def test_insert():
    stmt = parse("INSERT INTO users (name, karma) VALUES ('bob', 3)")
    assert isinstance(stmt, InsertStatement)
    assert stmt.columns == ("name", "karma")
    assert stmt.rows == ((Literal("bob"), Literal(3)),)
    assert stmt.is_write


def test_insert_multi_row():
    stmt = parse("INSERT INTO t (a) VALUES (1), (2), (3)")
    assert len(stmt.rows) == 3


def test_insert_without_columns():
    stmt = parse("INSERT INTO t VALUES (1, 'x')")
    assert stmt.columns == ()


def test_insert_qualified_table():
    stmt = parse("INSERT INTO heartbeats.heartbeat (id, ts) "
                 "VALUES (1, USEC_NOW())")
    assert stmt.table == "heartbeats.heartbeat"
    assert stmt.rows[0][1] == FunctionCall("USEC_NOW", ())


def test_update():
    stmt = parse("UPDATE users SET karma = karma + 1 WHERE id = 7")
    assert isinstance(stmt, UpdateStatement)
    assert stmt.assignments[0][0] == "karma"
    assert stmt.where == BinaryOp("=", ColumnRef("id"), Literal(7))


def test_update_multiple_assignments():
    stmt = parse("UPDATE t SET a = 1, b = 'x'")
    assert len(stmt.assignments) == 2
    assert stmt.where is None


def test_delete():
    stmt = parse("DELETE FROM users WHERE id = 3")
    assert isinstance(stmt, DeleteStatement)
    assert stmt.where is not None


def test_delete_all():
    assert parse("DELETE FROM users").where is None


# ------------------------------------------------------------------ DDL
def test_create_table():
    stmt = parse(
        "CREATE TABLE users ("
        "id INTEGER PRIMARY KEY AUTO_INCREMENT, "
        "name VARCHAR(64) NOT NULL, "
        "karma INTEGER DEFAULT 0, "
        "bio TEXT)")
    assert isinstance(stmt, CreateTableStatement)
    id_col, name_col, karma_col, bio_col = stmt.columns
    assert id_col.primary_key and id_col.auto_increment
    assert name_col.type_arg == 64 and not name_col.nullable
    assert karma_col.default == Literal(0)
    assert bio_col.type_name == "TEXT"


def test_create_table_separate_primary_key():
    stmt = parse("CREATE TABLE t (a INTEGER, b TEXT, PRIMARY KEY (a))")
    assert stmt.columns[0].primary_key


def test_create_table_composite_pk_rejected():
    with pytest.raises(ParseError):
        parse("CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")


def test_create_table_if_not_exists():
    assert parse("CREATE TABLE IF NOT EXISTS t (a INTEGER PRIMARY KEY)"
                 ).if_not_exists


def test_create_index():
    stmt = parse("CREATE INDEX idx_owner ON events (owner)")
    assert isinstance(stmt, CreateIndexStatement)
    assert stmt.columns == ("owner",)
    assert not stmt.unique


def test_create_unique_index():
    assert parse("CREATE UNIQUE INDEX ux ON t (a)").unique


def test_create_database():
    stmt = parse("CREATE DATABASE heartbeats")
    assert isinstance(stmt, CreateDatabaseStatement)
    assert stmt.name == "heartbeats"


def test_drop_table():
    stmt = parse("DROP TABLE IF EXISTS old_stuff")
    assert isinstance(stmt, DropTableStatement)
    assert stmt.if_exists


def test_use():
    stmt = parse("USE cloudstone")
    assert isinstance(stmt, UseStatement)


# ----------------------------------------------------------- transactions
def test_transaction_control():
    assert isinstance(parse("BEGIN"), BeginStatement)
    assert isinstance(parse("START TRANSACTION"), BeginStatement)
    assert isinstance(parse("COMMIT"), CommitStatement)
    assert isinstance(parse("ROLLBACK"), RollbackStatement)
    assert parse("BEGIN").is_transaction_control


# -------------------------------------------------------------- robustness
def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse("SELECT 1 SELECT 2")


def test_semicolon_tolerated():
    assert isinstance(parse("SELECT 1;"), SelectStatement)


def test_parse_many():
    statements = parse_many(
        "CREATE DATABASE d; USE d; "
        "CREATE TABLE t (a INTEGER PRIMARY KEY); "
        "INSERT INTO t (a) VALUES (1);")
    assert len(statements) == 4


def test_unknown_statement_rejected():
    with pytest.raises(ParseError):
        parse("EXPLAIN SELECT 1")


def test_missing_values_keyword():
    with pytest.raises(ParseError):
        parse("INSERT INTO t (a) (1)")


def test_bad_column_type():
    with pytest.raises(ParseError):
        parse("CREATE TABLE t (a BLOB PRIMARY KEY)")

"""Plan-cache semantics: hits, misses, eviction, fingerprinting, and
the correctness contract (cached plan ≡ fresh parse, byte for byte).
"""

import pytest

from repro.db.engine import StorageEngine
from repro.perf.benches import statement_corpus
from repro.sql import parse, render_statement
from repro.sql.plancache import PlanCache, fingerprint


# -- fingerprinting ---------------------------------------------------------
def test_literal_only_variants_share_a_template():
    a, literals_a = fingerprint("SELECT * FROM users WHERE id = 7")
    b, literals_b = fingerprint("SELECT * FROM users WHERE id = 941")
    assert a == b == "SELECT * FROM users WHERE id = ?"
    assert literals_a == ["7"]
    assert literals_b == ["941"]


def test_fingerprint_extracts_strings_and_floats():
    template, literals = fingerprint(
        "UPDATE events SET name = 'gala', score = 2.5 WHERE id = 3")
    assert template == \
        "UPDATE events SET name = ?, score = ? WHERE id = ?"
    assert literals == ["'gala'", "2.5", "3"]


def test_fingerprint_keeps_limit_and_offset_numbers_inline():
    # The grammar wants raw numbers after LIMIT/OFFSET; ``LIMIT ?``
    # would not parse, so those literals must survive templating.
    template, literals = fingerprint(
        "SELECT id FROM users WHERE age > 30 LIMIT 10 OFFSET 20")
    assert template == \
        "SELECT id FROM users WHERE age > ? LIMIT 10 OFFSET 20"
    assert literals == ["30"]


def test_fingerprint_skips_quoted_identifiers():
    template, literals = fingerprint(
        "SELECT `weird 1` FROM t WHERE `x 2` = 5")
    assert template == "SELECT `weird 1` FROM t WHERE `x 2` = ?"
    assert literals == ["5"]


# -- hit/miss/eviction ------------------------------------------------------
def test_exact_hit_returns_same_plan_object():
    cache = PlanCache()
    text = "SELECT * FROM users"  # no literals -> exact level only
    first, _ = cache.prepare(text)
    second, _ = cache.prepare(text)
    assert second is first
    assert (cache.hits, cache.misses) == (1, 1)


def test_template_hit_binds_extracted_literals():
    cache = PlanCache()
    plan_a, params_a = cache.prepare(
        "SELECT * FROM users WHERE id = 7")
    assert cache.misses == 1 and cache.hits == 0
    plan_b, params_b = cache.prepare(
        "SELECT * FROM users WHERE id = 941")
    assert cache.hits == 1 and cache.misses == 1
    assert plan_b is plan_a          # one shared templated plan
    assert list(params_a) == [7]
    assert list(params_b) == [941]


def test_caller_params_bypass_fingerprinting():
    # With explicit params the text's own ? placeholders are
    # authoritative; the fingerprint level must stay out of the way.
    cache = PlanCache()
    plan, params = cache.prepare(
        "SELECT * FROM users WHERE id = ?", [5])
    assert list(params) == [5]
    assert cache.misses == 1
    again, params = cache.prepare(
        "SELECT * FROM users WHERE id = ?", [9])
    assert again is plan and list(params) == [9]
    assert cache.hits == 1


def test_lru_eviction_bounds_the_exact_level():
    cache = PlanCache(capacity=2, fingerprint_capacity=0)
    cache.prepare("SELECT a FROM t1")
    cache.prepare("SELECT a FROM t2")
    cache.prepare("SELECT a FROM t1")   # refresh t1
    cache.prepare("SELECT a FROM t3")   # evicts t2 (least recent)
    assert cache.evictions == 1
    assert len(cache) == 2
    cache.prepare("SELECT a FROM t1")
    assert cache.hits == 2              # t1 survived the eviction
    cache.prepare("SELECT a FROM t2")
    assert cache.misses == 4            # t2 did not


def test_zero_capacity_disables_caching_but_still_parses():
    cache = PlanCache(capacity=0, fingerprint_capacity=0)
    text = "SELECT * FROM users WHERE id = 7"
    plan, params = cache.prepare(text)
    assert render_statement(plan, params) == render_statement(
        parse(text))
    cache.prepare(text)
    assert cache.hits == 0 and cache.misses == 2 and len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        PlanCache(capacity=-1)


# -- the self-proving template ---------------------------------------------
def test_unparsable_template_is_poisoned_not_fatal():
    # ``LIMIT 3, 5``: the count after the comma is not protected by
    # the LIMIT lookbehind, so the template has ``LIMIT 3, ?`` — which
    # does not parse.  The statement must still work (slow path) and
    # the template must be poisoned, not retried.
    cache = PlanCache()
    text = "SELECT id FROM users WHERE age > 30 LIMIT 3, 5"
    fresh = parse(text)
    plan, params = cache.prepare(text)
    assert render_statement(plan, params) == render_statement(fresh)
    plan, params = cache.prepare(
        "SELECT id FROM users WHERE age > 99 LIMIT 3, 5")
    assert render_statement(plan, params) == render_statement(
        parse("SELECT id FROM users WHERE age > 99 LIMIT 3, 5"))
    assert cache.hits == 0              # poisoned template never hits
    assert cache.misses == 2


def test_malformed_sql_raises_the_parsers_error():
    from repro.sql import ParseError
    cache = PlanCache()
    with pytest.raises(ParseError):
        cache.prepare("SELECT FROM WHERE")


# -- correctness over the full Cloudstone mix -------------------------------
def test_cached_plans_render_identically_over_the_full_mix():
    corpus = statement_corpus(seed=0, n_operations=60)
    cache = PlanCache()
    for text in corpus:                 # cold pass builds templates
        plan, params = cache.prepare(text)
        assert render_statement(plan, params) == \
            render_statement(parse(text))
    for text in corpus:                 # warm pass must agree too
        plan, params = cache.prepare(text)
        assert render_statement(plan, params) == \
            render_statement(parse(text))


def test_warm_hit_rate_exceeds_ninety_percent():
    corpus = statement_corpus(seed=0, n_operations=60)
    cache = PlanCache()
    for text in corpus:
        cache.prepare(text)
    warm_floor = cache.hits
    for text in corpus:
        cache.prepare(text)
    assert cache.hits - warm_floor == len(corpus)  # fully warm
    assert cache.hit_rate > 0.9


def test_cached_engine_execution_equals_uncached():
    # Same statement stream through two engines — one per-statement
    # parsed, one behind a shared plan cache: identical result rows,
    # profiles and committed binlog text.
    corpus = statement_corpus(seed=3, n_operations=40)
    plain = StorageEngine(default_database="cloudstone")
    cached = StorageEngine(default_database="cloudstone",
                           plan_cache=PlanCache())
    for engine in (plain, cached):
        engine.execute("CREATE DATABASE IF NOT EXISTS cloudstone")
    from repro.sim import RandomStreams
    from repro.workloads.cloudstone import load_initial_data

    class _Shim:
        def __init__(self, engine):
            self.engine = engine

        def admin(self, sql, database=None):
            return self.engine.execute(sql, database=database)

    load_initial_data(_Shim(plain), 40, RandomStreams(3).stream("x"))
    load_initial_data(_Shim(cached), 40, RandomStreams(3).stream("x"))
    for text in corpus:
        a = plain.execute(text, database="cloudstone")
        b = cached.execute(text, database="cloudstone")
        assert a.result.rows == b.result.rows
        assert a.result.columns == b.result.columns
        assert a.profile == b.profile
        assert a.committed == b.committed
    assert cached.plan_cache.hits > 0


# -- metrics ---------------------------------------------------------------
def test_attach_metrics_publishes_counters():
    from repro.obs.metrics import MetricsRegistry
    registry = MetricsRegistry()
    cache = PlanCache(capacity=1, fingerprint_capacity=0)
    cache.attach_metrics(registry)
    cache.prepare("SELECT a FROM t1")
    cache.prepare("SELECT a FROM t1")
    cache.prepare("SELECT a FROM t2")   # evicts t1
    assert registry.counter("sql.plancache.hits").value == 1
    assert registry.counter("sql.plancache.misses").value == 2
    assert registry.counter("sql.plancache.evictions").value == 1

"""Rendering tests, including parse -> render -> parse round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import parse, render_literal, render_statement


ROUND_TRIP_STATEMENTS = [
    "SELECT * FROM users",
    "SELECT DISTINCT id, name AS label FROM users AS u WHERE (id = 3)",
    "SELECT u.name, e.title FROM users AS u JOIN events AS e "
    "ON (e.owner = u.id) WHERE (e.title LIKE 'p%') "
    "ORDER BY e.id DESC LIMIT 10 OFFSET 2",
    "SELECT COUNT(*) FROM events",
    "SELECT MAX(karma) FROM users WHERE (karma BETWEEN 1 AND 9)",
    "INSERT INTO users (name, karma) VALUES ('bob', 3), ('alice', 4)",
    "INSERT INTO heartbeats.heartbeat (id, ts) VALUES (7, USEC_NOW())",
    "UPDATE users SET karma = (karma + 1) WHERE (id = 7)",
    "DELETE FROM users WHERE ((id > 3) AND (name IS NOT NULL))",
    "CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, "
    "name VARCHAR(64) NOT NULL, karma INTEGER DEFAULT 0)",
    "CREATE UNIQUE INDEX ux_name ON users (name)",
    "DROP TABLE IF EXISTS old",
    "CREATE DATABASE heartbeats",
    "USE cloudstone",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_render_round_trip_is_fixed_point(sql):
    """parse -> render -> parse -> render must be a fixed point."""
    once = render_statement(parse(sql))
    twice = render_statement(parse(once))
    assert once == twice


def test_params_inlined():
    stmt = parse("INSERT INTO t (a, b) VALUES (?, ?)")
    text = render_statement(stmt, params=(5, "it's"))
    assert text == "INSERT INTO t (a, b) VALUES (5, 'it''s')"
    # And the inlined text parses back cleanly.
    parse(text)


def test_params_left_symbolic_without_bindings():
    stmt = parse("SELECT * FROM t WHERE a = ?")
    assert "?" in render_statement(stmt)


def test_nondeterministic_function_stays_symbolic():
    stmt = parse("INSERT INTO hb (id, ts) VALUES (?, USEC_NOW())")
    text = render_statement(stmt, params=(1,))
    assert "USEC_NOW()" in text
    assert text.startswith("INSERT INTO hb (id, ts) VALUES (1,")


def test_render_literals():
    assert render_literal(None) == "NULL"
    assert render_literal(True) == "TRUE"
    assert render_literal(3) == "3"
    assert render_literal(2.5) == "2.5"
    assert render_literal("o'clock") == "'o''clock'"
    assert render_literal("back\\slash") == "'back\\\\slash'"


@given(value=st.one_of(
    st.integers(min_value=-10**12, max_value=10**12),
    st.text(max_size=40),
    st.booleans(),
    st.none()))
@settings(max_examples=300, deadline=None)
def test_any_literal_value_survives_binlog_round_trip(value):
    """Inlining a param and re-parsing yields the same stored value —
    the invariant statement-based replication depends on."""
    from repro.sql import EvalContext, evaluate
    stmt = parse("INSERT INTO t (a) VALUES (?)")
    text = render_statement(stmt, params=(value,))
    replayed = parse(text)
    got = evaluate(replayed.rows[0][0], EvalContext())
    if isinstance(value, bool):
        assert got == value
    else:
        assert got == value or (value is None and got is None)

"""Property-based tests over the SQL front end."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import (EvalContext, evaluate, parse, render_expression,
                       render_statement)
from repro.sql.ast import (BinaryOp, ColumnRef, Literal,
                           UnaryOp)

# -------------------------------------------------- expression strategies
literals = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6).map(Literal),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              allow_infinity=False).map(Literal),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=12).map(Literal),
    st.booleans().map(Literal),
    st.just(Literal(None)),
)

columns = st.sampled_from(["a", "b", "c"]).map(ColumnRef)


def expressions(depth=3):
    if depth == 0:
        return st.one_of(literals, columns)
    sub = expressions(depth - 1)
    return st.one_of(
        literals,
        columns,
        st.builds(BinaryOp,
                  st.sampled_from(["+", "-", "*", "=", "!=", "<", ">",
                                   "<=", ">=", "AND", "OR"]),
                  sub, sub),
        st.builds(UnaryOp, st.just("NOT"), sub),
    )


ROW = {"t.a": 1, "t.b": 2.5, "t.c": "x"}


@given(expr=expressions())
@settings(max_examples=400, deadline=None)
def test_expression_render_parse_reaches_fixed_point(expr):
    """After one normalization pass (e.g. ``-1`` becomes unary minus),
    render -> parse -> render is a fixed point."""
    once = render_expression(
        parse(f"SELECT {render_expression(expr)}").items[0].expression)
    twice = render_expression(
        parse(f"SELECT {once}").items[0].expression)
    assert twice == once


@given(expr=expressions())
@settings(max_examples=400, deadline=None)
def test_round_tripped_expression_evaluates_identically(expr):
    """Statement-based replication correctness at expression level:
    the re-parsed text evaluates to exactly the original value."""
    ctx = EvalContext(row=ROW)

    def safe_eval(e):
        try:
            return ("ok", evaluate(e, ctx))
        except Exception as exc:  # comparison of mixed types, etc.
            return ("err", type(exc).__name__)

    original = safe_eval(expr)
    reparsed = parse(f"SELECT {render_expression(expr)}").items[0].expression
    assert safe_eval(reparsed) == original


@given(values=st.lists(st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=10),
    st.none()), min_size=1, max_size=8))
@settings(max_examples=300, deadline=None)
def test_insert_statement_round_trip_preserves_values(values):
    """A bound INSERT inlined into binlog text re-parses to the same
    stored values."""
    placeholders = ", ".join("?" for _ in values)
    columns = ", ".join(f"c{i}" for i in range(len(values)))
    stmt = parse(f"INSERT INTO t ({columns}) VALUES ({placeholders})")
    text = render_statement(stmt, params=values)
    replayed = parse(text)
    ctx = EvalContext()
    got = [evaluate(e, ctx) for e in replayed.rows[0]]
    assert got == list(values)


@given(low=st.integers(min_value=-100, max_value=100),
       span=st.integers(min_value=0, max_value=50),
       probe=st.integers(min_value=-200, max_value=200))
@settings(max_examples=200, deadline=None)
def test_between_equivalence(low, span, probe):
    high = low + span
    ctx = EvalContext()
    between = evaluate(parse(
        f"SELECT {probe} BETWEEN {low} AND {high}").items[0].expression,
        ctx)
    manual = evaluate(parse(
        f"SELECT {probe} >= {low} AND {probe} <= {high}"
    ).items[0].expression, ctx)
    assert between == manual


@given(pattern=st.text(alphabet="ab%_", max_size=6),
       value=st.text(alphabet="ab", max_size=6))
@settings(max_examples=300, deadline=None)
def test_like_never_crashes_and_is_deterministic(pattern, value):
    from repro.sql import like_match
    first = like_match(value, pattern)
    assert like_match(value, pattern) == first
    if "%" not in pattern and "_" not in pattern:
        assert first == (value.lower() == pattern.lower())

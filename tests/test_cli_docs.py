"""docs/CLI.md must stay in lockstep with the actual CLI."""

import re
from pathlib import Path

from repro.cli import build_parser

DOCS = Path(__file__).resolve().parent.parent / "docs" / "CLI.md"


def cli_subcommands():
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        return set(action.choices)
    raise AssertionError("CLI has no subparsers")


def documented_subcommands():
    text = DOCS.read_text(encoding="utf-8")
    # The summary table rows: | [`name`](#anchor) | ... |
    return set(re.findall(r"^\| \[`(\w+)`\]", text, flags=re.M))


def test_docs_exist():
    assert DOCS.is_file()


def test_every_subcommand_is_documented():
    missing = cli_subcommands() - documented_subcommands()
    assert not missing, f"undocumented subcommands: {sorted(missing)}"


def test_no_stale_documented_subcommands():
    stale = documented_subcommands() - cli_subcommands()
    assert not stale, f"documented but gone: {sorted(stale)}"


def test_documented_usage_lines_match_parser():
    """Each ``usage: repro <cmd>`` block in the docs names a real
    subcommand, and every flag it shows exists on that subparser."""
    text = DOCS.read_text(encoding="utf-8")
    parser = build_parser()
    choices = None
    for action in parser._subparsers._group_actions:
        choices = action.choices
    for match in re.finditer(r"usage: repro (\w+)((?:.|\n)*?)```", text):
        name, body = match.group(1), match.group(2)
        assert name in choices, name
        known = {option
                 for action in choices[name]._actions
                 for option in action.option_strings}
        for flag in re.findall(r"(--[a-z-]+)", body):
            assert flag in known, f"{name}: unknown flag {flag}"


def test_bench_usage_block_shows_every_bench_flag():
    """The `repro bench` usage block must not drop flags: every
    option on the subparser (except -h) appears in the docs."""
    text = DOCS.read_text(encoding="utf-8")
    match = re.search(r"usage: repro bench((?:.|\n)*?)```", text)
    assert match, "docs/CLI.md has no `usage: repro bench` block"
    shown = set(re.findall(r"(--[a-z-]+)", match.group(1)))
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        bench = action.choices["bench"]
    expected = {option for action in bench._actions
                for option in action.option_strings
                if option.startswith("--") and option != "--help"}
    assert expected <= shown, \
        f"bench flags missing from docs: {sorted(expected - shown)}"


def test_bench_docs_list_every_registered_benchmark():
    """The registry and the docs' bench-name list stay in lockstep."""
    from repro.perf.registry import all_benchmarks
    text = DOCS.read_text(encoding="utf-8")
    for bench_spec in all_benchmarks():
        assert f"`{bench_spec.name}`" in text, \
            f"benchmark {bench_spec.name!r} not named in docs/CLI.md"


PERF_DOCS = Path(__file__).resolve().parent.parent / "docs" \
    / "PERFORMANCE.md"


def test_performance_playbook_exists_and_is_linked():
    assert PERF_DOCS.is_file()
    repo = PERF_DOCS.parent.parent
    for linker in ("README.md", "EXPERIMENTS.md", "docs/CLI.md",
                   "docs/ARCHITECTURE.md"):
        assert "PERFORMANCE.md" in \
            (repo / linker).read_text(encoding="utf-8"), \
            f"{linker} does not link the performance playbook"


def test_performance_playbook_examples_use_real_flags():
    """Every ``repro <cmd> --flag`` example in PERFORMANCE.md names a
    real subcommand and only flags that subparser accepts."""
    text = PERF_DOCS.read_text(encoding="utf-8")
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        choices = action.choices
    for line in re.findall(r"python -m repro (\w+)([^\n]*)", text):
        name, rest = line
        assert name in choices, f"unknown subcommand {name!r}"
        known = {option
                 for action in choices[name]._actions
                 for option in action.option_strings}
        for flag in re.findall(r"(--[a-z-]+)", rest):
            assert flag in known, \
                f"PERFORMANCE.md: {name}: unknown flag {flag}"


def test_performance_playbook_names_current_baseline():
    """The worked case study must reference the committed baseline
    that actually exists (the trajectory convention it documents)."""
    repo = PERF_DOCS.parent.parent
    text = PERF_DOCS.read_text(encoding="utf-8")
    names = set(re.findall(r"BENCH_[0-9a-z-]+\.json", text))
    assert names, "playbook never names a BENCH_<date>.json file"
    for name in names:
        assert (repo / name).is_file(), \
            f"PERFORMANCE.md references {name}, which is not committed"

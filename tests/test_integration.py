"""Full-stack integration scenarios.

Each test wires the complete system — cloud, servers, replication,
proxy, pool, workload, measurement — and checks an end-to-end
behaviour the unit suites cannot see.
"""


from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.db import DatabaseError
from repro.replication import (ClusterMonitor, ConnectionPool,
                               HeartbeatPlugin, ReplicationManager,
                               collect_delays, detect_pressure,
                               fail_master, promote)
from repro.sim import RandomStreams, Simulator
from repro.workloads.cloudstone import (LoadGenerator, MIX_50_50, MIX_80_20,
                                        Phases, load_initial_data)

PHASES = Phases(ramp_up=20.0, steady=80.0, ramp_down=10.0)


def build_stack(seed, n_slaves=2, data_size=60, mix=MIX_50_50, n_users=15,
                think=2.0, slave_zone=None, binlog_format="statement"):
    sim = Simulator()
    streams = RandomStreams(seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=1.0,
                                 binlog_format=binlog_format)
    master = manager.create_master(MASTER_PLACEMENT)
    state = load_initial_data(master, data_size, streams.stream("loader"))
    heartbeat = HeartbeatPlugin(sim, master)
    heartbeat.install()
    placement = cloud.placement(slave_zone) if slave_zone \
        else MASTER_PLACEMENT
    for _ in range(n_slaves):
        manager.add_slave(placement)
    heartbeat.start()
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    pool = ConnectionPool(sim, max_active=64)
    generator = LoadGenerator(sim, proxy, pool, mix, state, streams,
                              n_users=n_users, think_time_mean=think,
                              phases=PHASES)
    return sim, manager, master, heartbeat, proxy, pool, generator


def test_full_run_converges_and_measures():
    sim, manager, master, heartbeat, proxy, pool, generator = \
        build_stack(seed=101)
    generator.start()
    sim.run(until=PHASES.total)
    heartbeat.stop()
    sim.run(until=PHASES.total + 120.0)
    assert generator.steady_throughput() > 2.0
    assert manager.all_caught_up()
    assert manager.verify_consistency()
    for slave in manager.slaves:
        samples = collect_delays(heartbeat, slave)
        assert len(samples) > 50
        # NTP-disciplined clocks + light load: small positive-ish delay.
        median = sorted(s.delay_ms for s in samples)[len(samples) // 2]
        assert -20.0 < median < 500.0


def test_pool_bound_limits_concurrency_under_load():
    sim, manager, master, heartbeat, proxy, pool, generator = \
        build_stack(seed=102, n_users=30, think=0.5)
    pool.max_active = 4
    pool._slots.capacity = 4
    generator.start()
    max_active = 0

    def watcher(sim):
        nonlocal max_active
        while sim.now < PHASES.total:
            max_active = max(max_active, pool.active)
            yield sim.timeout(0.25)

    sim.process(watcher(sim))
    sim.run(until=PHASES.total)
    assert max_active <= 4
    assert pool.mean_wait_time >= 0.0
    assert generator.steady_throughput() > 0.5


def test_failover_under_live_load():
    """Kill the master mid-workload, promote, re-point the proxy, and
    finish the run consistently."""
    sim, manager, master, heartbeat, proxy, pool, generator = \
        build_stack(seed=103, n_slaves=3)
    generator.start()
    outcome = {}

    def chaos(sim):
        yield sim.timeout(40.0)
        heartbeat.stop()       # plugin writes to the dying master
        fail_master(manager)
        new_master = yield from promote(manager)
        proxy.set_master(new_master)
        proxy.slaves = list(manager.slaves)
        outcome["master"] = new_master

    sim.process(chaos(sim))
    sim.run(until=PHASES.total + 120.0)
    new_master = outcome["master"]
    assert manager.master is new_master
    assert manager.all_caught_up()
    assert manager.verify_consistency()
    # The cluster kept serving after the failover.
    post = generator.completions.count_in(45.0, PHASES.total)
    assert post > 10


def test_users_survive_master_outage_window():
    """Write operations fail while the master is down; the generator
    keeps running reads and recovers once a new master is in place."""
    sim, manager, master, heartbeat, proxy, pool, generator = \
        build_stack(seed=104, n_slaves=2, mix=MIX_80_20)
    generator.start()

    def chaos(sim):
        yield sim.timeout(30.0)
        heartbeat.stop()
        fail_master(manager)
        new_master = yield from promote(manager)
        proxy.set_master(new_master)
        proxy.slaves = list(manager.slaves)

    sim.process(chaos(sim))
    # Some users hit the dead master and crash their processes; the
    # kernel surfaces those errors — tolerate them, then verify the
    # system itself stayed consistent.
    interrupted = 0
    while True:
        try:
            sim.run(until=PHASES.total)
            break
        except DatabaseError:
            interrupted += 1
    assert manager.verify_consistency() or not manager.all_caught_up()


def test_monitor_sees_saturation_during_overload():
    sim, manager, master, heartbeat, proxy, pool, generator = \
        build_stack(seed=105, n_slaves=1, n_users=60, think=0.5)
    monitor = ClusterMonitor(sim, manager, period=5.0)
    monitor.start()
    generator.start()
    sim.run(until=PHASES.total)
    assert any(detect_pressure(s).slaves_overloaded
               or detect_pressure(s).replication_lagging
               for s in monitor.samples)


def test_row_format_full_stack_consistency():
    sim, manager, master, heartbeat, proxy, pool, generator = \
        build_stack(seed=106, binlog_format="row")
    generator.start()
    sim.run(until=PHASES.total)
    heartbeat.stop()
    sim.run(until=PHASES.total + 120.0)
    assert manager.all_caught_up()
    assert manager.verify_consistency()
    # Row format also makes the heartbeat table identical (master's
    # timestamps replicate verbatim) — the raw engine checksums match.
    for slave in manager.slaves:
        assert slave.engine.checksum() == master.engine.checksum()


def test_cross_region_cluster_full_run():
    sim, manager, master, heartbeat, proxy, pool, generator = \
        build_stack(seed=107, slave_zone="ap-southeast-1a")
    generator.start()
    sim.run(until=PHASES.total)
    heartbeat.stop()
    sim.run(until=PHASES.total + 180.0)
    assert manager.all_caught_up()
    assert manager.verify_consistency()
    samples = collect_delays(heartbeat, manager.slaves[0],
                             window_start=0.0, window_end=30.0)
    # Idle-ish delay floor ~ one-way latency to ap-southeast.
    median = sorted(s.delay_ms for s in samples)[len(samples) // 2]
    assert 120.0 < median < 400.0


def test_elastic_growth_mid_run_keeps_ratio_and_consistency():
    sim, manager, master, heartbeat, proxy, pool, generator = \
        build_stack(seed=108, n_slaves=1, mix=MIX_80_20, n_users=25,
                    think=1.0)
    generator.start()

    def grow(sim):
        for _ in range(3):
            yield sim.timeout(20.0)
            slave = manager.add_slave(MASTER_PLACEMENT)
            proxy.add_slave(slave)

    sim.process(grow(sim))
    sim.run(until=PHASES.total)
    heartbeat.stop()
    sim.run(until=PHASES.total + 120.0)
    assert len(manager.slaves) == 4
    assert manager.all_caught_up()
    assert manager.verify_consistency()
    assert 0.7 < generator.steady_read_write_ratio() < 0.9

"""Tests for the shared metrics utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import Cloud, MASTER_PLACEMENT, SMALL
from repro.metrics import (CpuUtilizationProbe, TimeSeries, summarize,
                           trimmed_mean)
from repro.sim import RandomStreams, Simulator


# ------------------------------------------------------------ trimmed_mean
def test_trimmed_mean_plain_average_when_no_trim_needed():
    assert trimmed_mean([1.0, 2.0, 3.0], trim=0.0) == pytest.approx(2.0)


def test_trimmed_mean_cuts_outliers():
    # 20 samples, 5% trim -> one sample cut from each end.
    samples = [10.0] * 18 + [0.0, 1000.0]
    assert trimmed_mean(samples, trim=0.05) == pytest.approx(10.0)


def test_trimmed_mean_paper_default_is_five_percent():
    samples = list(range(100))
    # cuts 0-4 and 95-99
    assert trimmed_mean(samples) == pytest.approx(
        sum(range(5, 95)) / 90)


def test_trimmed_mean_validation():
    with pytest.raises(ValueError):
        trimmed_mean([1.0], trim=0.5)
    with pytest.raises(ValueError):
        trimmed_mean([1.0], trim=-0.1)
    with pytest.raises(ValueError):
        trimmed_mean([])


@given(samples=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                  allow_nan=False), min_size=1,
                        max_size=100),
       trim=st.floats(min_value=0.0, max_value=0.45))
@settings(max_examples=200, deadline=None)
def test_trimmed_mean_bounded_by_extremes(samples, trim):
    value = trimmed_mean(samples, trim)
    assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9


@given(samples=st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                  allow_nan=False), min_size=3,
                        max_size=50))
@settings(max_examples=100, deadline=None)
def test_trimmed_mean_invariant_to_order(samples):
    # Seeded shuffle: deterministic, despite using stdlib random.
    import random  # simlint: disable=DET002
    shuffled = list(samples)
    random.Random(0).shuffle(shuffled)
    assert trimmed_mean(samples) == pytest.approx(trimmed_mean(shuffled))


# --------------------------------------------------------------- summarize
def test_summarize():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.median == pytest.approx(2.5)
    assert stats.minimum == 1.0 and stats.maximum == 4.0
    assert "n=4" in str(stats)


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


# -------------------------------------------------------------- TimeSeries
def test_timeseries_window_half_open():
    series = TimeSeries()
    for t in (0.0, 1.0, 2.0, 3.0):
        series.record(t, t * 10)
    assert series.window(1.0, 3.0) == [10.0, 20.0]
    assert series.count_in(0.0, 4.0) == 4
    assert len(series) == 4


def test_timeseries_rate():
    series = TimeSeries()
    for t in range(10):
        series.record(float(t), 1.0)
    assert series.rate_in(0.0, 10.0) == pytest.approx(1.0)
    assert series.rate_in(0.0, 5.0) == pytest.approx(1.0)
    assert series.rate_in(5.0, 5.0) == 0.0


def test_timeseries_empty():
    series = TimeSeries()
    assert series.window(0.0, 10.0) == []
    assert series.count_in(0.0, 10.0) == 0
    assert series.rate_in(0.0, 10.0) == 0.0


def test_timeseries_degenerate_and_inverted_windows():
    series = TimeSeries()
    series.record(1.0, 10.0)
    series.record(2.0, 20.0)
    assert series.window(1.0, 1.0) == []        # start == end
    assert series.count_in(1.0, 1.0) == 0
    assert series.window(2.0, 1.0) == []        # inverted
    assert series.count_in(2.0, 1.0) == 0


def test_timeseries_window_out_of_range():
    series = TimeSeries()
    for t in (1.0, 2.0, 3.0):
        series.record(t, t)
    assert series.window(-10.0, 0.0) == []      # entirely before
    assert series.window(4.0, 10.0) == []       # entirely after
    assert series.window(-10.0, 10.0) == [1.0, 2.0, 3.0]
    assert series.count_in(3.0, 100.0) == 1     # start inclusive
    assert series.window(0.0, 3.0) == [1.0, 2.0]  # end exclusive


def test_timeseries_duplicate_times_all_counted():
    series = TimeSeries()
    for value in (1.0, 2.0, 3.0):
        series.record(5.0, value)
    assert series.window(5.0, 5.1) == [1.0, 2.0, 3.0]
    assert series.count_in(0.0, 5.0) == 0
    assert series.count_in(5.0, 6.0) == 3


def test_timeseries_rejects_time_going_backwards():
    series = TimeSeries()
    series.record(2.0, 1.0)
    series.record(2.0, 2.0)  # equal timestamps are fine
    with pytest.raises(ValueError):
        series.record(1.0, 3.0)


@given(times=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                allow_nan=False), min_size=0,
                      max_size=60),
       start=st.floats(min_value=-10.0, max_value=1100.0,
                       allow_nan=False),
       span=st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_timeseries_bisect_matches_linear_scan(times, start, span):
    """The bisect fast path must agree with the definitional filter."""
    series = TimeSeries()
    for index, t in enumerate(sorted(times)):
        series.record(t, float(index))
    end = start + span
    expected = [v for t, v in zip(series.times, series.values)
                if start <= t < end]
    assert series.window(start, end) == expected
    assert series.count_in(start, end) == len(expected)


# ------------------------------------------------------ CpuUtilizationProbe
def test_cpu_probe():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(1))
    instance = cloud.launch(SMALL, MASTER_PLACEMENT)
    probe = CpuUtilizationProbe(instance)

    def worker(sim, instance):
        while sim.now < 100.0:
            yield from instance.compute(0.010)
            yield sim.timeout(instance.service_time(0.030))

    sim.process(worker(sim, instance))
    sim.run(until=10.0)
    probe.start()
    sim.run(until=90.0)
    utilization = probe.stop()
    assert 0.2 < utilization < 0.3  # 25% duty cycle


def test_cpu_probe_requires_start():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(2))
    probe = CpuUtilizationProbe(cloud.launch(SMALL, MASTER_PLACEMENT))
    with pytest.raises(ValueError):
        probe.stop()

"""Load-generator tests (small closed-loop runs)."""

import pytest

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import ConnectionPool, ReplicationManager
from repro.sim import RandomStreams, Simulator
from repro.workloads.cloudstone import (LoadGenerator, MIX_50_50, MIX_80_20,
                                        Phases, load_initial_data)


def build_rig(seed=21, n_slaves=1, data_size=40):
    sim = Simulator()
    streams = RandomStreams(seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    state = load_initial_data(master, data_size, streams.stream("loader"))
    for _ in range(n_slaves):
        manager.add_slave(MASTER_PLACEMENT)
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    pool = ConnectionPool(sim, max_active=64)
    return sim, streams, manager, proxy, pool, state


PHASES = Phases(ramp_up=10.0, steady=40.0, ramp_down=5.0)


def test_phases_arithmetic():
    phases = Phases(600, 1200, 300)
    assert phases.steady_start == 600
    assert phases.steady_end == 1800
    assert phases.total == 2100
    scaled = phases.scaled(0.1)
    assert scaled.total == pytest.approx(210)


def test_generator_validations():
    sim, streams, manager, proxy, pool, state = build_rig()
    with pytest.raises(ValueError):
        LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                      n_users=0)
    with pytest.raises(ValueError):
        LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                      n_users=5, think_time_mean=0.0)


def test_double_start_rejected():
    sim, streams, manager, proxy, pool, state = build_rig()
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=2, phases=PHASES)
    generator.start()
    with pytest.raises(RuntimeError):
        generator.start()


def test_users_complete_operations():
    sim, streams, manager, proxy, pool, state = build_rig()
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=10, think_time_mean=2.0,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    assert len(generator.completions) > 50
    assert generator.steady_throughput() > 1.0
    assert generator.op_counts  # several operation kinds ran


def test_achieved_ratio_tracks_mix():
    sim, streams, manager, proxy, pool, state = build_rig(seed=22)
    generator = LoadGenerator(sim, proxy, pool, MIX_80_20, state, streams,
                              n_users=20, think_time_mean=1.0,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    assert 0.72 < generator.steady_read_write_ratio() < 0.88


def test_reads_hit_slaves_writes_hit_master():
    sim, streams, manager, proxy, pool, state = build_rig(seed=23,
                                                          n_slaves=2)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=10, think_time_mean=1.5,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    master = manager.master
    assert master.writes_served > 0
    # Master serves no client SELECT-only operations.
    assert all(slave.queries_served > 0 for slave in manager.slaves)
    assert all(slave.writes_served == 0 for slave in manager.slaves)


def test_workload_preserves_replica_consistency():
    sim, streams, manager, proxy, pool, state = build_rig(seed=24,
                                                          n_slaves=2)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=8, think_time_mean=1.0,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    sim.run(until=PHASES.total + 120.0)  # drain replication
    assert manager.all_caught_up()
    assert manager.verify_consistency()


def test_throughput_increases_with_users_before_saturation():
    def throughput(n_users):
        sim, streams, manager, proxy, pool, state = build_rig(seed=25)
        generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state,
                                  streams, n_users=n_users,
                                  think_time_mean=5.0, phases=PHASES)
        generator.start()
        sim.run(until=PHASES.total)
        return generator.steady_throughput()

    assert throughput(20) > 1.5 * throughput(5)


def test_mean_latency_positive():
    sim, streams, manager, proxy, pool, state = build_rig(seed=26)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=5, think_time_mean=2.0,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    assert generator.steady_mean_latency() > 0.0


def test_steady_window_offsets_from_start_time():
    sim, streams, manager, proxy, pool, state = build_rig(seed=27)
    sim.run(until=50.0)  # start late, like after a baseline phase
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=5, think_time_mean=2.0,
                              phases=PHASES)
    generator.start()
    assert generator.t0 == 50.0
    assert generator.steady_window == (60.0, 100.0)
    sim.run(until=50.0 + PHASES.total)
    assert generator.steady_throughput() > 0.0


class FlakyProxy:
    """Delegates to a real proxy but injects DatabaseError periodically.

    ``execute`` stays a process generator (the driver drives it with
    ``yield from``), so the injected failure surfaces inside the
    driver's operation loop exactly like a rejected statement or a
    server that went offline mid-failover.
    """

    def __init__(self, proxy, fail_every=4):
        self._proxy = proxy
        self._fail_every = fail_every
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._proxy, name)

    def execute(self, statement, params=None, server=None):
        self.calls += 1
        if self.calls % self._fail_every == 0:
            from repro.db.errors import DatabaseError
            raise DatabaseError("injected failure")
        result = yield from self._proxy.execute(statement, params=params,
                                                server=server)
        return result


class DeadProxy:
    """Every statement fails instantly — a cluster mid-outage."""

    def __init__(self, sim, proxy):
        self._sim = sim
        self._proxy = proxy

    def __getattr__(self, name):
        return getattr(self._proxy, name)

    def execute(self, statement, params=None, server=None):
        from repro.db.errors import DatabaseError
        yield self._sim.timeout(0.0)
        raise DatabaseError("cluster down")


def test_interrupting_user_during_backoff_leaks_no_pool_slot():
    """Regression: the driver releases its connection *before* the
    retry backoff sleep, so interrupting a user parked in backoff
    must leave the pool whole (active drains to zero and a later
    borrower still gets the slot)."""
    from repro.replication import RetryPolicy
    from repro.sim import Interrupt

    sim, streams, manager, proxy, pool, state = build_rig(seed=30)
    policy = RetryPolicy(max_attempts=5, base_backoff=30.0,
                         multiplier=1.0, jitter=0.0)
    generator = LoadGenerator(sim, DeadProxy(sim, proxy), pool, MIX_50_50,
                              state, streams, n_users=1,
                              think_time_mean=0.001,
                              phases=Phases(ramp_up=0.0, steady=200.0,
                                            ramp_down=0.0),
                              retry=policy)
    generator.start()
    victim = generator.user_processes[0]
    victim.defuse()  # the Interrupt below is intentionally unhandled

    def assassin(sim, victim):
        # First operation fails within milliseconds; by t=10 the user
        # is deep in its 30 s backoff with no connection held.
        yield sim.timeout(10.0)
        assert pool.active == 0
        victim.interrupt()

    def late_user(sim, pool):
        yield sim.timeout(20.0)
        conn = yield from pool.acquire()
        pool.release(conn)
        return sim.now

    sim.process(assassin(sim, victim))
    late = sim.process(late_user(sim, pool))
    sim.run(until=50.0)
    assert victim.triggered  # the interrupt killed the user
    assert late.value == 20.0  # slot immediately available
    assert pool.active == 0
    assert pool.waiting == 0
    assert generator.retries >= 1


def test_failing_operation_releases_connection_and_user_survives():
    """Regression: a DatabaseError mid-operation must not leak the
    pooled connection (pool.active drains to 0) nor kill the emulated
    user (load keeps flowing and the error is counted)."""
    sim, streams, manager, proxy, pool, state = build_rig(seed=29)
    flaky = FlakyProxy(proxy, fail_every=4)
    generator = LoadGenerator(sim, flaky, pool, MIX_50_50, state, streams,
                              n_users=8, think_time_mean=1.0,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total + 60.0)  # drain in-flight operations
    # If a user died at its first error there could be at most
    # n_users errors in the whole run; many more proves every user
    # kept generating load after failing, and completions kept coming.
    assert generator.errors > 4 * generator.n_users
    assert len(generator.completions) > 4 * generator.n_users
    assert pool.active == 0
    assert pool.waiting == 0

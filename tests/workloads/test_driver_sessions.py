"""Driver behaviour around sessions, stickiness and phases."""


from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import ConnectionPool, ReplicationManager
from repro.sim import RandomStreams, Simulator
from repro.workloads.cloudstone import (LoadGenerator, MIX_50_50, Phases,
                                        load_initial_data)

PHASES = Phases(ramp_up=5.0, steady=40.0, ramp_down=5.0)


def build(seed=31, window=0.0, n_slaves=2):
    sim = Simulator()
    streams = RandomStreams(seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    state = load_initial_data(master, 40, streams.stream("loader"))
    for _ in range(n_slaves):
        manager.add_slave(MASTER_PLACEMENT)
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    proxy.read_your_writes_window = window
    pool = ConnectionPool(sim, max_active=64)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=12, think_time_mean=1.0,
                              phases=PHASES)
    return sim, manager, proxy, generator


def test_driver_feeds_sessions_to_proxy():
    sim, manager, proxy, generator = build(window=3.0)
    generator.start()
    sim.run(until=PHASES.total)
    # With think time ~1 s < window 3 s, users frequently read right
    # after their own writes -> sticky reads occur.
    assert proxy.sticky_reads > 0


def test_zero_window_means_no_sticky_reads():
    sim, manager, proxy, generator = build(window=0.0)
    generator.start()
    sim.run(until=PHASES.total)
    assert proxy.sticky_reads == 0


def test_sticky_reads_shift_load_to_master():
    def master_queries(window):
        sim, manager, proxy, generator = build(window=window)
        generator.start()
        sim.run(until=PHASES.total)
        return manager.master.queries_served

    assert master_queries(5.0) > master_queries(0.0)


def test_state_clock_bound_at_start():
    sim, manager, proxy, generator = build()
    assert generator.state.now() == 0.0
    sim.run(until=7.5)
    generator.start()
    assert generator.state.now() == 7.5


def test_no_completions_before_first_think():
    sim, manager, proxy, generator = build()
    generator.start()
    sim.run(until=0.01)
    assert len(generator.completions) == 0

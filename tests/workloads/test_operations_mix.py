"""Operation and mix tests."""

import pytest

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import ReplicationManager
from repro.sim import RandomStreams, Simulator
from repro.sql import parse
from repro.workloads.cloudstone import (MIX_50_50, MIX_80_20,
                                        OperationMix, READ_OPERATIONS,
                                        WRITE_OPERATIONS, WorkloadState,
                                        load_initial_data,
                                        operation_by_name)

ALL_OPERATIONS = [op for op, _w in READ_OPERATIONS + WRITE_OPERATIONS]


@pytest.fixture
def state():
    return WorkloadState(n_users=100, n_events=100, n_tags=40)


@pytest.fixture
def rng():
    return RandomStreams(11).stream("ops")


@pytest.mark.parametrize("operation", ALL_OPERATIONS,
                         ids=lambda op: op.name)
def test_every_operation_builds_parseable_sql(operation, state, rng):
    for _ in range(20):
        statements = operation.build(state, rng)
        assert statements
        for sql in statements:
            parsed = parse(sql)
            if not operation.is_write:
                assert not parsed.is_write, \
                    f"read op {operation.name} contains a write"


@pytest.mark.parametrize("operation", ALL_OPERATIONS,
                         ids=lambda op: op.name)
def test_every_operation_executes_against_loaded_data(operation, state, rng):
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(12))
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    loaded_state = load_initial_data(master, 50,
                                     RandomStreams(1).stream("l"))
    for _ in range(10):
        for sql in operation.build(loaded_state, rng):
            master.admin(sql)  # must not raise


def test_write_operations_contain_a_write(state, rng):
    for operation, _weight in WRITE_OPERATIONS:
        statements = [parse(s) for s in operation.build(state, rng)]
        assert any(s.is_write for s in statements)


def test_create_event_grows_state(state):
    operation = operation_by_name("create_event")
    before = state.n_events
    operation.on_complete(state)
    assert state.n_events == before + 1


def test_create_user_grows_state(state):
    operation = operation_by_name("create_user")
    before = state.n_users
    operation.on_complete(state)
    assert state.n_users == before + 1


def test_unknown_operation_name():
    with pytest.raises(KeyError):
        operation_by_name("drop_all_tables")


def test_write_ops_stamp_literal_timestamps(state, rng):
    """Replicated writes must NOT call non-deterministic time functions
    (each replica would commit a different value); the client stamps a
    literal instead.  Only the heartbeat insert uses USEC_NOW()."""
    for operation, _weight in WRITE_OPERATIONS:
        for sql in operation.build(state, rng):
            assert "USEC_NOW" not in sql
    state.now_fn = lambda: 123.25
    statements = operation_by_name("add_comment").build(state, rng)
    assert any("123.25" in s for s in statements)


# ------------------------------------------------------------------- mix
def test_mix_read_fractions():
    assert MIX_50_50.read_fraction == 0.5
    assert MIX_80_20.read_fraction == 0.8
    assert MIX_80_20.write_fraction == pytest.approx(0.2)


def test_mix_pick_respects_ratio(rng):
    picks = [MIX_80_20.pick(rng) for _ in range(4000)]
    read_fraction = sum(1 for op in picks if not op.is_write) / len(picks)
    assert 0.77 < read_fraction < 0.83


def test_mix_pick_uses_weights(rng):
    picks = [MIX_50_50.pick(rng) for _ in range(6000)]
    counts = {}
    for op in picks:
        counts[op.name] = counts.get(op.name, 0) + 1
    # view_event_detail (w=0.35 of reads) must be the most common read.
    read_counts = {op.name: counts.get(op.name, 0)
                   for op, _w in READ_OPERATIONS}
    assert max(read_counts, key=read_counts.get) == "view_event_detail"


def test_invalid_read_fraction_rejected():
    with pytest.raises(ValueError):
        OperationMix("bad", read_fraction=1.5)


# ----------------------------------------------------------------- state
def test_state_id_picks_in_range(state, rng):
    for _ in range(200):
        assert 1 <= state.random_user(rng) <= state.n_users
        assert 1 <= state.random_event(rng) <= state.n_events
        assert 1 <= state.random_tag(rng) <= state.n_tags


def test_state_date_window(state, rng):
    low, high = state.random_date_window(rng, fraction=0.2)
    assert 0.0 <= low < high <= state.time_horizon
    assert high - low == pytest.approx(state.time_horizon * 0.2)

"""Latency-percentile reporting tests."""


from repro.experiments import LocationConfig, PAPER_50_50, run_experiment
from repro.workloads.cloudstone import Phases
from tests.workloads.test_driver import PHASES, build_rig
from repro.workloads.cloudstone import LoadGenerator, MIX_50_50


def test_percentiles_are_ordered():
    sim, streams, manager, proxy, pool, state = build_rig(seed=61)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=10, think_time_mean=1.5,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    percentiles = generator.steady_latency_percentiles()
    assert percentiles[50.0] > 0.0
    assert percentiles[50.0] <= percentiles[95.0] <= percentiles[99.0]
    assert abs(generator.steady_mean_latency()
               - percentiles[50.0]) < percentiles[99.0]


def test_percentiles_empty_window():
    sim, streams, manager, proxy, pool, state = build_rig(seed=62)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=2, phases=PHASES)
    # Never started: no completions.
    assert generator.steady_latency_percentiles() == \
        {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}


def test_runner_exposes_percentiles():
    config = PAPER_50_50(LocationConfig.SAME_ZONE, n_slaves=1, n_users=8,
                         phases=Phases(10, 30, 5), seed=63,
                         baseline_duration=10.0, data_size=40)
    result = run_experiment(config)
    assert set(result.latency_percentiles_s) == {50.0, 95.0, 99.0}
    assert result.latency_percentiles_s[95.0] >= \
        result.latency_percentiles_s[50.0]


def test_custom_percentile_set():
    sim, streams, manager, proxy, pool, state = build_rig(seed=64)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=8, think_time_mean=1.0,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    percentiles = generator.steady_latency_percentiles((10.0, 90.0))
    assert set(percentiles) == {10.0, 90.0}
    assert percentiles[10.0] <= percentiles[90.0]

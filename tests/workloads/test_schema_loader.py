"""Cloudstone schema and loader tests."""

import pytest

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import ReplicationManager
from repro.sim import RandomStreams, Simulator
from repro.sql import parse
from repro.workloads.cloudstone import (SCHEMA_STATEMENTS, TAG_COUNT,
                                        load_initial_data)


@pytest.fixture
def master():
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(9))
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    return manager.create_master(MASTER_PLACEMENT)


def test_schema_statements_all_parse():
    for statement in SCHEMA_STATEMENTS:
        parse(statement)


def test_loader_row_counts(master):
    state = load_initial_data(master, 50, RandomStreams(1).stream("l"))
    counts = {
        table: master.admin(f"SELECT COUNT(*) FROM {table}").result.scalar()
        for table in ("users", "events", "tags")}
    assert counts["users"] == 50
    assert counts["events"] == 50
    assert counts["tags"] == TAG_COUNT
    assert state.n_users == 50
    assert state.n_events == 50
    assert state.n_tags == TAG_COUNT


def test_loader_fanout_tables_populated(master):
    load_initial_data(master, 50, RandomStreams(2).stream("l"))
    event_tags = master.admin(
        "SELECT COUNT(*) FROM event_tags").result.scalar()
    attendees = master.admin(
        "SELECT COUNT(*) FROM attendees").result.scalar()
    comments = master.admin(
        "SELECT COUNT(*) FROM comments").result.scalar()
    assert 50 <= event_tags <= 150   # 1-3 tags per event
    assert 0 < attendees <= 250      # 0-5 attendees per event
    assert 0 <= comments <= 100      # 0-2 comments per event


def test_loader_attendee_counts_consistent(master):
    load_initial_data(master, 40, RandomStreams(3).stream("l"))
    rows = master.admin(
        "SELECT id, attendee_count FROM events").result.rows
    for event_id, attendee_count in rows:
        actual = master.admin(
            f"SELECT COUNT(*) FROM attendees WHERE event_id = {event_id}"
        ).result.scalar()
        assert actual == attendee_count


def test_loader_event_dates_within_horizon(master):
    state = load_initial_data(master, 30, RandomStreams(4).stream("l"))
    rows = master.admin("SELECT event_date FROM events").result.rows
    assert all(0.0 <= date <= state.time_horizon for (date,) in rows)


def test_loader_is_deterministic():
    def build():
        sim = Simulator()
        cloud = Cloud(sim, RandomStreams(9))
        manager = ReplicationManager(sim, cloud, ntp_period=None)
        master = manager.create_master(MASTER_PLACEMENT)
        load_initial_data(master, 30, RandomStreams(7).stream("l"))
        return master.engine.checksum()

    assert build() == build()


def test_loader_rejects_bad_size(master):
    with pytest.raises(ValueError):
        load_initial_data(master, 0, RandomStreams(0).stream("l"))


def test_loaded_data_snapshots_to_slaves(master):
    sim = master.sim
    cloud = Cloud(sim, RandomStreams(10))
    # reuse the master's manager path: attach a slave after loading
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    manager.master = master
    load_initial_data(master, 25, RandomStreams(5).stream("l"))
    slave = manager.add_slave(MASTER_PLACEMENT)
    assert slave.admin("SELECT COUNT(*) FROM events").result.scalar() == 25
